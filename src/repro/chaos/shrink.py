"""Minimal-counterexample search over failing fault schedules.

When an episode fails, its schedule typically contains faults that have
nothing to do with the failure (the sampler drew up to ``max_faults``
of them).  Because episodes are deterministic functions of
``(schedule, config)``, we can shrink the schedule the way
property-testing frameworks shrink inputs: greedily drop one fault at a
time, replay, and keep the smaller schedule whenever the episode still
fails *with the same outcome class*.  A final pass also tries calming
the environment knobs (network loss/duplication, torn-tail width) to
zero.

The result is the smallest schedule the greedy search could reach —
usually one to three faults — which is what a human debugging the
failure actually wants to stare at, and what the CI smoke job prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chaos.engine import EpisodeResult, run_episode
from repro.chaos.schedule import ChaosConfig, ChaosSchedule

#: hard cap on replays one shrink may spend (a full greedy pass over a
#: schedule of n faults costs at most n replays, and each success
#: shrinks the schedule, so this is generous)
MAX_REPLAYS = 200


@dataclass
class ShrinkResult:
    """The minimal failing schedule found and how much work it took."""

    original: ChaosSchedule
    minimal: ChaosSchedule
    result: EpisodeResult
    replays: int = 0
    removed: int = 0
    history: list[str] = field(default_factory=list)

    def to_record(self) -> dict[str, Any]:
        return {
            "seed": self.original.seed,
            "replays": self.replays,
            "removed": self.removed,
            "original_faults": len(self.original.faults),
            "minimal_faults": len(self.minimal.faults),
            "minimal_schedule": self.minimal.to_record(),
            "result": self.result.to_record(),
            "history": list(self.history),
        }


def shrink(
    schedule: ChaosSchedule,
    config: ChaosConfig | None = None,
    failed: EpisodeResult | None = None,
    max_replays: int = MAX_REPLAYS,
    progress: Callable[[str], None] | None = None,
) -> ShrinkResult:
    """Greedily minimise a failing schedule.

    ``failed`` is the original failing result if the caller already has
    it (saves one replay).  A candidate counts as "still failing" when
    its outcome equals the original failing outcome — shrinking a
    guarantee violation into a mere stall would change what is being
    debugged.
    """
    config = config if config is not None else ChaosConfig()
    note = progress if progress is not None else (lambda _msg: None)
    replays = 0
    if failed is None:
        failed = run_episode(schedule.seed, config, schedule=schedule)
        replays += 1
    if not failed.failed:
        raise ValueError(
            f"schedule for seed {schedule.seed} does not fail "
            f"(outcome {failed.outcome!r}); nothing to shrink"
        )
    target = failed.outcome
    current, best = schedule, failed
    history: list[str] = []

    def attempt(candidate: ChaosSchedule, label: str) -> EpisodeResult | None:
        nonlocal replays
        if replays >= max_replays:
            return None
        replays += 1
        result = run_episode(candidate.seed, config, schedule=candidate)
        if result.outcome == target:
            history.append(label)
            note(f"shrink: {label} kept failure ({len(candidate.faults)} faults)")
            return result
        return None

    # Greedy single-removal to a fixed point: after every successful
    # removal, restart the scan (removals can unmask each other).
    progressed = True
    while progressed and replays < max_replays:
        progressed = False
        for index in range(len(current.faults)):
            candidate = current.without(index)
            label = f"drop {current.faults[index]}"
            result = attempt(candidate, label)
            if result is not None:
                current, best = candidate, result
                progressed = True
                break
    # Environment knobs last: a quiet network / clean crash tails keep
    # the counterexample readable if they are not load-bearing.
    calmed = current.calmed()
    if calmed != current:
        result = attempt(calmed, "calm network + clean crash tails")
        if result is not None:
            current, best = calmed, result

    return ShrinkResult(
        original=schedule,
        minimal=current,
        result=best,
        replays=replays,
        removed=len(schedule.faults) - len(current.faults),
        history=history,
    )
