"""Write-ahead log with CRC framing and torn-write recovery.

Record layout on disk::

    +-------+----------+----------+------------------+
    | magic | length   | crc32    | payload          |
    | 2 B   | 4 B (BE) | 4 B (BE) | ``length`` bytes |
    +-------+----------+----------+------------------+

The CRC covers the payload.  A record's LSN is its byte offset in the
area, so LSNs are dense, ordered, and stable across restarts.

Torn-write handling (Section 10's "there is still the need to log
updates"): a crash may leave a partial record at the tail.  On scan,
the first record that fails framing or CRC *at the tail* ends the log
silently; if valid framed data follows a corrupt record, the log is
genuinely damaged and :class:`~repro.errors.CorruptRecordError` is
raised.

Flush-failure handling (panic semantics): when ``disk.flush`` raises,
the durability of everything buffered becomes unknowable — a kernel (or
our :class:`~repro.storage.faults.FaultyDisk`) may have dropped the
dirty pages.  Retrying the flush later could then silently make a
commit record durable *after* its transaction was reported as failed,
so recovery would redo a transaction the application believes never
happened.  The log therefore *panics* on the first flush failure: the
original exception propagates to the committer, and every subsequent
append or flush raises :class:`~repro.errors.WalPanicError` until the
node restarts and rebuilds the log from the durable prefix.  This is
the post-"fsyncgate" PostgreSQL policy, and it is what makes group
commit safe under I/O errors: a follower whose leader's flush failed
cannot retry the flush and accidentally promote the leader's records.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import (
    CorruptRecordError,
    DiskCrashedError,
    StorageError,
    WalPanicError,
)
from repro.obs import Observability, get_observability
from repro.storage.disk import Disk

_MAGIC = b"\xC4\x51"
_HEADER = struct.Struct(">2sII")  # magic, length, crc32
HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class WalRecord:
    """One log record as returned by a scan."""

    lsn: int
    payload: bytes

    @property
    def next_lsn(self) -> int:
        return self.lsn + HEADER_SIZE + len(self.payload)


class WriteAheadLog:
    """Append-only log over one disk area.

    Thread-safe.  ``append`` buffers; ``flush`` forces; the *flushed
    LSN* is tracked so callers can implement force-at-commit cheaply
    (skip the flush if the commit record is already durable).
    """

    def __init__(self, disk: Disk, area: str = "wal",
                 obs: Observability | None = None):
        self.disk = disk
        self.area = area
        self._lock = threading.Lock()
        # Resume appending after the valid record prefix (restart); a
        # torn tail left by a crash is durably discarded first, because
        # appending *after* damaged framing would turn an expected torn
        # write into mid-log corruption on the next scan.
        self._next_lsn = self._trim_torn_tail()
        self._flushed_lsn = self._next_lsn
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_appends = metrics.counter(
            "wal_appends_total", "log records appended", ("area",)
        ).labels(area=area)
        self._m_bytes = metrics.counter(
            "wal_appended_bytes_total", "log bytes appended (incl. framing)", ("area",)
        ).labels(area=area)
        self._m_flushes = metrics.counter(
            "wal_flushes_total", "log forces (fsync-equivalents)", ("area",)
        ).labels(area=area)
        self._m_panics = metrics.counter(
            "wal_panics_total", "log panics after a failed flush", ("area",)
        ).labels(area=area)
        self._panic: BaseException | None = None

    def _trim_torn_tail(self) -> int:
        """Find the end of the valid record prefix; durably drop any
        torn tail beyond it.  Returns the append point.

        Raises :class:`CorruptRecordError` when valid framed data
        follows the damage — that is mid-log corruption, and truncating
        there would silently destroy committed records.
        """
        if self.area not in self.disk.areas():
            return 0
        data = self.disk.read(self.area)
        pos = 0
        while True:
            _record, next_pos, ok = self._parse_at(data, pos)
            if not ok:
                break
            pos = next_pos
        if pos < len(data):
            if self._valid_record_after(data, pos + 1):
                raise CorruptRecordError(
                    f"corrupt record at lsn {pos} followed by valid data"
                )
            self.disk.replace(self.area, data[:pos])
        return pos

    # -- panic state -------------------------------------------------------

    @property
    def panicked(self) -> bool:
        """True once a flush has failed; the log refuses all writes."""
        return self._panic is not None

    @property
    def panic_cause(self) -> BaseException | None:
        """The flush failure that panicked the log, if any."""
        return self._panic

    def _check_panic(self) -> None:
        # Caller holds self._lock.
        if self._panic is not None:
            raise WalPanicError(
                f"log area {self.area!r} is panicked after a failed flush"
            ) from self._panic

    def _flush_disk(self) -> None:
        # Caller holds self._lock and has verified there is data to
        # force.  A DiskCrashedError does not panic: the crash already
        # discarded the buffers, so there is nothing a retry could
        # wrongly promote; restart/recovery handles it.
        try:
            self.disk.flush(self.area)
        except DiskCrashedError:
            raise
        except (StorageError, OSError) as exc:
            self._panic = exc
            self._m_panics.inc()
            raise
        self._flushed_lsn = self._next_lsn
        self._m_flushes.inc()

    # -- writing -----------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one record (buffered).  Returns its LSN."""
        header = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        with self._lock:
            self._check_panic()
            lsn = self.disk.append(self.area, header + payload)
            self._next_lsn = lsn + HEADER_SIZE + len(payload)
        self._m_appends.inc()
        self._m_bytes.inc(HEADER_SIZE + len(payload))
        return lsn

    def append_many(self, payloads: Iterable[bytes]) -> list[int]:
        """Append a vector of records under one lock acquisition and one
        disk write.  Returns their LSNs, in order.

        The batch is framed record-by-record, so a torn tail inside the
        batch loses a suffix of it, exactly as for individual appends.
        """
        frames: list[bytes] = []
        sizes: list[int] = []
        for payload in payloads:
            frames.append(
                _HEADER.pack(_MAGIC, len(payload),
                             zlib.crc32(payload) & 0xFFFFFFFF) + payload
            )
            sizes.append(HEADER_SIZE + len(payload))
        if not frames:
            return []
        with self._lock:
            self._check_panic()
            base = self.disk.append(self.area, b"".join(frames))
            lsns: list[int] = []
            pos = base
            for size in sizes:
                lsns.append(pos)
                pos += size
            self._next_lsn = pos
        self._m_appends.inc(len(frames))
        self._m_bytes.inc(sum(sizes))
        return lsns

    def flush(self) -> None:
        """Force all appended records to stable storage.

        A failure propagates to the caller and panics the log (see
        module docstring); the flushed LSN does not advance.
        """
        with self._lock:
            self._check_panic()
            if self._flushed_lsn < self._next_lsn:
                self._flush_disk()

    def flush_until(self, lsn: int) -> int:
        """Force the record appended at ``lsn`` (and everything before
        it) to stable storage; a no-op if it is already durable.

        Because a flush forces the whole area, the flushed LSN advances
        to the current append point, not just past ``lsn`` — the basis
        of group commit (:mod:`repro.storage.groupcommit`): one flush
        covers every record appended so far.  Returns the flushed LSN.
        """
        with self._lock:
            self._check_panic()
            if self._flushed_lsn <= lsn and self._flushed_lsn < self._next_lsn:
                self._flush_disk()
            return self._flushed_lsn

    def append_flush(self, payload: bytes) -> int:
        """Append one record and force it (one-call force-at-commit)."""
        lsn = self.append(payload)
        self.flush()
        return lsn

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    # -- scanning ------------------------------------------------------------

    def scan(self, from_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield valid records starting at ``from_lsn``.

        Stops silently at a torn tail; raises
        :class:`CorruptRecordError` if valid data follows corruption
        (mid-log damage).
        """
        data = self.disk.read(self.area)
        pos = from_lsn
        end = len(data)
        while pos < end:
            record, next_pos, ok = self._parse_at(data, pos)
            if not ok:
                if self._valid_record_after(data, pos + 1):
                    raise CorruptRecordError(
                        f"corrupt record at lsn {pos} followed by valid data"
                    )
                return
            yield record
            pos = next_pos

    def records(self) -> list[WalRecord]:
        """All valid records, eagerly."""
        return list(self.scan())

    @staticmethod
    def _parse_at(data: bytes, pos: int) -> tuple[WalRecord | None, int, bool]:
        if pos + HEADER_SIZE > len(data):
            return None, pos, False
        magic, length, crc = _HEADER.unpack_from(data, pos)
        if magic != _MAGIC:
            return None, pos, False
        start = pos + HEADER_SIZE
        stop = start + length
        if stop > len(data):
            return None, pos, False
        payload = data[start:stop]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None, pos, False
        return WalRecord(pos, payload), stop, True

    @classmethod
    def _valid_record_after(cls, data: bytes, start: int) -> bool:
        """Is there any parseable record at/after ``start``?  Used to
        distinguish a torn tail (expected) from mid-log corruption."""
        pos = start
        # Bound the search: corruption checks are O(n) worst case but the
        # damaged window is normally tiny (one record).
        while pos + HEADER_SIZE <= len(data):
            idx = data.find(_MAGIC, pos)
            if idx < 0:
                return False
            record, _, ok = cls._parse_at(data, idx)
            if ok:
                return True
            pos = idx + 1
        return False

    # -- truncation (checkpointing) -------------------------------------------

    def reset(self) -> None:
        """Durably discard the log (caller must have checkpointed all
        state it still needs — see :class:`repro.transaction.log.LogManager`)."""
        with self._lock:
            # Refuse on panic: a checkpoint taken while commit durability
            # is unknowable must not destroy the durable log prefix.
            self._check_panic()
            self.disk.truncate(self.area)
            self._next_lsn = 0
            self._flushed_lsn = 0
