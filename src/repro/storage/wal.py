"""Segmented write-ahead log with CRC framing and torn-write recovery.

Record layout on disk — individually-appended records keep their own
CRC frame::

    +-------+----------+----------+------------------+
    | magic | length   | crc32    | payload          |
    | 2 B   | 4 B (BE) | 4 B (BE) | ``length`` bytes |
    +-------+----------+----------+------------------+

A *batch* (``append_batch``/``append_many``: one lock acquisition, one
disk write, one CRC pass for N records — the per-transaction commit
batching of :class:`~repro.transaction.log.LogManager`) shares one
frame::

    +--------+----------+----------+----------------------------------+
    | bmagic | body_len | crc32    | body: ( sub_len 4B | payload )*  |
    | 2 B    | 4 B (BE) | 4 B (BE) | ``body_len`` bytes               |
    +--------+----------+----------+----------------------------------+

The batch CRC covers the whole body.  A sub-record's LSN is the byte
offset of its ``sub_len`` field in the record stream, so LSNs stay
dense and strictly ordered whether a record travelled alone or in a
batch.  A torn tail inside a batch drops the *whole* batch: the batch
CRC cannot vouch for a prefix, and a batch is one transaction's
records ending in its commit/prepare record, so losing a prefix and
losing the batch are the same outcome (the transaction was never
acknowledged — its commit record was not durable).

The CRC covers the payload.  The log is split across numbered *segment
areas* (``<area>.000001``, ``<area>.000002``, …); each segment starts
with a 16-byte header naming the LSN of its first record::

    +-----------+----------+----------+
    | seg magic | base LSN | crc32    |
    | 4 B       | 8 B (BE) | 4 B (BE) |
    +-----------+----------+----------+

A record's LSN is its byte offset in the *record stream* — segment
headers are excluded — so LSNs are dense, ordered, monotonic across
segment rolls, and stable across restarts.  Appends go to the *live*
(highest-numbered) segment; once :meth:`WriteAheadLog.roll` seals a
segment it is immutable and fully durable, which is what lets
:meth:`WriteAheadLog.gc` reclaim whole segments after a checkpoint
covers them (Section 10's log "managed as a database": bounded, not
ever-growing).

Torn-write handling: a crash may leave a partial record at the tail of
the **live segment only** — sealed segments were flushed before the
roll, so damage inside one (or framing damage followed by valid data
in the live segment) is genuine corruption and raises
:class:`~repro.errors.CorruptRecordError`.  A crash can also tear the
live segment's *header* (the roll buffered it but never flushed): such
a segment has no durable records by construction, so it is durably
deleted and its predecessor becomes live again.

Flush-failure handling (panic semantics): when ``disk.flush`` raises,
the durability of everything buffered becomes unknowable — a kernel (or
our :class:`~repro.storage.faults.FaultyDisk`) may have dropped the
dirty pages.  Retrying the flush later could then silently make a
commit record durable *after* its transaction was reported as failed,
so recovery would redo a transaction the application believes never
happened.  The log therefore *panics* on the first flush failure: the
original exception propagates to the committer, and every subsequent
append or flush raises :class:`~repro.errors.WalPanicError` until the
node restarts and rebuilds the log from the durable prefix.  This is
the post-"fsyncgate" PostgreSQL policy, and it is what makes group
commit safe under I/O errors: a follower whose leader's flush failed
cannot retry the flush and accidentally promote the leader's records.
"""

from __future__ import annotations

import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import (
    CorruptRecordError,
    DiskCrashedError,
    StorageError,
    WalFencedError,
    WalPanicError,
)
from repro.obs import Observability, get_observability
from repro.storage.disk import Disk

_MAGIC = b"\xC4\x51"
_BATCH_MAGIC = b"\xC4\x52"
#: both magics share this first byte — the corruption probe scans for it
_MAGIC_PREFIX = b"\xC4"
_HEADER = struct.Struct(">2sII")  # magic, length, crc32
HEADER_SIZE = _HEADER.size
_SUB_LEN = struct.Struct(">I")  # per-record length inside a batch body
SUB_HEADER_SIZE = _SUB_LEN.size

_SEG_MAGIC = b"WSEG"
_SEG_HEADER = struct.Struct(">4sQI")  # magic, base lsn, crc32(magic+base)
SEGMENT_HEADER_SIZE = _SEG_HEADER.size

#: Soft segment-size bound: an append that finds the live segment at or
#: past this many record bytes rolls first.  Large enough that unit
#: tests over a handful of records never see a roll.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def _pack_segment_header(base_lsn: int) -> bytes:
    body = _SEG_MAGIC + struct.pack(">Q", base_lsn)
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


def _parse_segment_header(data: bytes) -> int | None:
    """Base LSN of the segment, or None if the header is torn/invalid."""
    if len(data) < SEGMENT_HEADER_SIZE:
        return None
    magic, base, crc = _SEG_HEADER.unpack_from(data, 0)
    if magic != _SEG_MAGIC:
        return None
    if zlib.crc32(data[: SEGMENT_HEADER_SIZE - 4]) & 0xFFFFFFFF != crc:
        return None
    return base


@dataclass(frozen=True)
class WalRecord:
    """One log record as returned by a scan."""

    lsn: int
    payload: bytes
    #: stream offset just past this record's framing — differs between
    #: individually-framed records (10-byte header) and batch
    #: sub-records (4-byte sub-length); excluded from equality so
    #: hand-built ``WalRecord(lsn, payload)`` values compare by content
    end: int | None = field(default=None, compare=False)

    @property
    def next_lsn(self) -> int:
        if self.end is not None:
            return self.end
        return self.lsn + HEADER_SIZE + len(self.payload)


class WriteAheadLog:
    """Append-only log over numbered segment areas of one disk.

    Thread-safe.  ``append`` buffers; ``flush`` forces; the *flushed
    LSN* is tracked so callers can implement force-at-commit cheaply
    (skip the flush if the commit record is already durable).  Because
    a roll seals the old segment only after flushing it, a single
    ``disk.flush`` of the live segment is always enough to advance the
    flushed LSN to the append point — group commit's ``flush_until``
    works unchanged across segment boundaries.
    """

    def __init__(self, disk: Disk, area: str = "wal",
                 obs: Observability | None = None, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        self.disk = disk
        self.area = area
        self.segment_bytes = max(1, int(segment_bytes))
        self._lock = threading.Lock()
        #: (index, base_lsn) per segment, ascending; last entry is live.
        self._segs: list[tuple[int, int]] = []
        self._panic: BaseException | None = None
        self._fence_reason: str | None = None
        #: Shipping hooks (``repro.replication``): ``on_append`` hooks
        #: receive ``(lsn, framed_bytes)`` for every physical append,
        #: ``on_flush`` hooks receive the new flushed LSN after a
        #: successful force.  Both fire *while the log lock is held*, so
        #: a shipper observes appends and flushes in log order.
        self.on_append: list[Callable[[int, bytes], None]] = []
        self.on_flush: list[Callable[[int], None]] = []
        # Resume appending after the valid record prefix (restart); a
        # torn tail left by a crash is durably discarded first, because
        # appending *after* damaged framing would turn an expected torn
        # write into mid-log corruption on the next scan.
        self._next_lsn = self._open()
        self._flushed_lsn = self._next_lsn
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._flight = obs.flight
        self._m_appends = metrics.counter(
            "wal_appends_total", "physical log appends "
            "(a batch of records counts once)", ("area",)
        ).labels(area=area)
        self._m_records = metrics.counter(
            "wal_records_total", "log records appended "
            "(batch sub-records count individually)", ("area",)
        ).labels(area=area)
        self._m_bytes = metrics.counter(
            "wal_appended_bytes_total", "log bytes appended (incl. framing)", ("area",)
        ).labels(area=area)
        self._m_flushes = metrics.counter(
            "wal_flushes_total", "log forces (fsync-equivalents)", ("area",)
        ).labels(area=area)
        self._m_panics = metrics.counter(
            "wal_panics_total", "log panics after a failed flush", ("area",)
        ).labels(area=area)
        self._m_append_time = metrics.histogram(
            "wal_append_seconds", "time spent appending one record "
            "(buffering only, no force)", ("area",)
        ).labels(area=area)
        self._m_force_time = metrics.histogram(
            "wal_force_seconds", "time spent in one disk flush "
            "(the force half of force-at-commit)", ("area",)
        ).labels(area=area)
        metrics.gauge(
            "wal_segments", "live segment count per log", ("area",)
        ).labels(area=area).set_function(self.segment_count)
        metrics.gauge(
            "wal_live_bytes", "bytes across live segments per log", ("area",)
        ).labels(area=area).set_function(self.live_bytes)

    # -- segment bookkeeping -----------------------------------------------

    def _seg_area(self, index: int) -> str:
        return f"{self.area}.{index:06d}"

    @property
    def live_area(self) -> str:
        """Disk area of the live (append) segment."""
        with self._lock:
            return self._seg_area(self._segs[-1][0])

    def segments(self) -> list[str]:
        """Disk areas of all segments, oldest first."""
        with self._lock:
            return [self._seg_area(index) for index, _base in self._segs]

    def segment_count(self) -> int:
        with self._lock:
            return len(self._segs)

    def oldest_lsn(self) -> int:
        """LSN of the first record still on disk (base of the oldest
        segment); records below it have been reclaimed by :meth:`gc`."""
        with self._lock:
            return self._segs[0][1]

    def live_bytes(self) -> int:
        """Total on-disk bytes across all segments (incl. headers)."""
        with self._lock:
            areas = [self._seg_area(index) for index, _base in self._segs]
        return sum(self.disk.size(area) for area in areas)

    def _create_segment(self, index: int, base: int) -> None:
        # Buffered: the header becomes durable with the first flush that
        # covers the segment.  A crash before that leaves a headerless
        # area, which _open treats as "the roll never happened".
        self.disk.append(self._seg_area(index), _pack_segment_header(base))
        self._segs.append((index, base))

    def _open(self) -> int:
        """Discover segments, validate them, trim the live torn tail.
        Returns the append point."""
        pattern = re.compile(re.escape(self.area) + r"\.(\d{6})")
        found = sorted(
            int(match.group(1))
            for name in self.disk.areas()
            if (match := pattern.fullmatch(name)) is not None
        )
        if not found:
            self._create_segment(1, 0)
            return 0
        expected_base: int | None = None
        next_lsn = 0
        for position, index in enumerate(found):
            area = self._seg_area(index)
            last = position == len(found) - 1
            data = self.disk.read(area)
            base = _parse_segment_header(data)
            if base is None or (expected_base is not None
                                and base != expected_base):
                # A headerless *last* segment is a torn roll (the header
                # was buffered, never flushed): by construction it holds
                # no durable records, so drop it and resume on the
                # predecessor.  Anything else — a damaged header in a
                # sealed segment, a base-LSN discontinuity, or valid
                # records behind the damage — is real corruption.
                if not last or self._valid_record_after(data, 1):
                    raise CorruptRecordError(
                        f"segment {area!r} has a damaged header"
                    )
                self.disk.delete(area)
                if not self._segs:
                    self._create_segment(1, 0)
                    return 0
                return next_lsn
            pos = SEGMENT_HEADER_SIZE
            while True:
                _records, next_pos, ok = self._parse_frame(data, pos)
                if not ok:
                    break
                pos = next_pos
            if pos < len(data):
                lsn = base + pos - SEGMENT_HEADER_SIZE
                if not last or self._valid_record_after(data, pos + 1):
                    raise CorruptRecordError(
                        f"corrupt record at lsn {lsn} followed by valid data"
                    )
                self.disk.replace(area, data[:pos])
            self._segs.append((index, base))
            expected_base = base + pos - SEGMENT_HEADER_SIZE
            next_lsn = expected_base
        return next_lsn

    # -- panic state -------------------------------------------------------

    @property
    def panicked(self) -> bool:
        """True once a flush has failed; the log refuses all writes."""
        return self._panic is not None

    @property
    def panic_cause(self) -> BaseException | None:
        """The flush failure that panicked the log, if any."""
        return self._panic

    def _check_panic(self) -> None:
        # Caller holds self._lock.
        if self._panic is not None:
            raise WalPanicError(
                f"log area {self.area!r} is panicked after a failed flush"
            ) from self._panic
        if self._fence_reason is not None:
            raise WalFencedError(
                f"log area {self.area!r} is fenced: {self._fence_reason}"
            )

    # -- fencing (failover) --------------------------------------------------

    @property
    def fenced(self) -> bool:
        """True once :meth:`fence` was called; the log refuses writes."""
        return self._fence_reason is not None

    def fence(self, reason: str = "superseded by failover") -> None:
        """Refuse all further writes (append/flush/ingest/roll/gc).

        Called on a deposed primary after its standby is promoted: a
        zombie node that wakes up mid-append must not land bytes that
        diverge from the new primary's history.  Scanning stays legal —
        a fenced log is read-only, not destroyed.  Idempotent.
        """
        with self._lock:
            if self._fence_reason is None:
                self._fence_reason = reason
        self._flight.record("wal.fence", area=self.area, reason=reason)

    def _flush_disk(self) -> None:
        # Caller holds self._lock and has verified there is data to
        # force.  Only the live segment can hold unflushed bytes —
        # sealed segments were flushed by the roll that sealed them.
        # A DiskCrashedError does not panic: the crash already
        # discarded the buffers, so there is nothing a retry could
        # wrongly promote; restart/recovery handles it.
        try:
            with self._m_force_time.time():
                self.disk.flush(self._seg_area(self._segs[-1][0]))
        except DiskCrashedError:
            raise
        except (StorageError, OSError) as exc:
            self._panic = exc
            self._m_panics.inc()
            # Black-box dump: the panic is node-fatal, so this is the
            # last chance to capture what led up to it.
            self._flight.record("wal.panic", area=self.area,
                                error=type(exc).__name__, lsn=self._next_lsn)
            self._flight.auto_dump("wal-panic")
            raise
        self._flushed_lsn = self._next_lsn
        self._m_flushes.inc()
        self._flight.record("wal.force", area=self.area, lsn=self._next_lsn)
        for hook in self.on_flush:
            hook(self._flushed_lsn)

    # -- segment rolling and reclamation -----------------------------------

    def _roll_locked(self) -> None:
        if self._segs[-1][1] == self._next_lsn:
            return  # live segment holds no records yet; nothing to seal
        # Seal invariant: everything in a sealed segment is durable, so
        # later flushes only ever need to touch the live segment.
        if self._flushed_lsn < self._next_lsn:
            self._flush_disk()
        self._create_segment(self._segs[-1][0] + 1, self._next_lsn)

    def _maybe_roll_locked(self) -> None:
        if self._next_lsn - self._segs[-1][1] >= self.segment_bytes:
            self._roll_locked()

    def roll(self) -> str:
        """Seal the live segment (flushing it) and open a fresh one; a
        no-op while the live segment is empty.  Returns the live area.

        Checkpoints roll first so that the checkpoint-begin record
        opens a segment: once the checkpoint covers everything below
        it, :meth:`gc` can reclaim *all* older segments.
        """
        with self._lock:
            self._check_panic()
            self._roll_locked()
            return self._seg_area(self._segs[-1][0])

    def gc(self, keep_from_lsn: int) -> int:
        """Durably delete sealed segments wholly below ``keep_from_lsn``
        (oldest first, never the live segment).  Returns the number of
        segments reclaimed.

        Safe at any moment: a crash between deletes just leaves more
        segments for the next GC, and the base-LSN chain stays
        contiguous because reclamation is strictly oldest-first.
        """
        with self._lock:
            self._check_panic()
            reclaimed = 0
            while len(self._segs) > 1:
                index, _base = self._segs[0]
                end = self._segs[1][1]
                if end > keep_from_lsn:
                    break
                self.disk.delete(self._seg_area(index))
                self._segs.pop(0)
                reclaimed += 1
            return reclaimed

    # -- writing -----------------------------------------------------------

    def append(self, payload: bytes,
               on_lsn: Callable[[int], None] | None = None) -> int:
        """Append one record (buffered).  Returns its LSN.

        ``on_lsn`` is invoked with the record's LSN *while the log lock
        is held*: anything published there is ordered-before every
        later append (the hook :class:`~repro.transaction.log.LogManager`
        uses to keep its first-LSN table consistent with the log).
        """
        header = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        size = HEADER_SIZE + len(payload)
        with self._m_append_time.time():
            with self._lock:
                self._check_panic()
                self._maybe_roll_locked()
                lsn = self._next_lsn
                data = header + payload
                self.disk.append(self._seg_area(self._segs[-1][0]), data)
                self._next_lsn = lsn + size
                if on_lsn is not None:
                    on_lsn(lsn)
                for hook in self.on_append:
                    hook(lsn, data)
        self._m_appends.inc()
        self._m_records.inc()
        self._m_bytes.inc(size)
        return lsn

    def append_batch(self, body: bytes | bytearray | memoryview,
                     offsets: Sequence[int],
                     on_lsns: Callable[[list[int]], None] | None = None,
                     ) -> list[int]:
        """Append N pre-framed records as one batch frame: one lock
        acquisition, one CRC pass over the whole body, one disk write.

        ``body`` is the batch body — ``(sub_len | payload)*`` sub-frames
        — and ``offsets`` holds each sub-frame's start offset within it.
        :class:`~repro.transaction.log.LogManager` builds the body
        incrementally as a transaction logs updates, so publishing at
        commit needs no re-framing or per-record copies.  A
        single-record batch is written as a classic frame, so records
        that travel alone keep their own CRC.

        ``on_lsns`` is invoked with the records' LSNs *while the log
        lock is held* (the ordering contract of ``append``'s
        ``on_lsn``).  Returns the LSNs, in order.
        """
        count = len(offsets)
        if count == 0:
            return []
        if count == 1:
            payload = bytes(memoryview(body)[SUB_HEADER_SIZE:])
            data = _HEADER.pack(
                _MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
            ) + payload
        else:
            crc = zlib.crc32(body) & 0xFFFFFFFF
            data = b"".join((_HEADER.pack(_BATCH_MAGIC, len(body), crc), body))
        size = len(data)
        with self._m_append_time.time():
            with self._lock:
                self._check_panic()
                self._maybe_roll_locked()
                first = self._next_lsn
                if count == 1:
                    lsns = [first]
                else:
                    record_base = first + HEADER_SIZE
                    lsns = [record_base + offset for offset in offsets]
                self.disk.append(self._seg_area(self._segs[-1][0]), data)
                self._next_lsn = first + size
                if on_lsns is not None:
                    on_lsns(lsns)
                for hook in self.on_append:
                    hook(first, data)
        self._m_appends.inc()
        self._m_records.inc(count)
        self._m_bytes.inc(size)
        return lsns

    def append_many(self, payloads: Iterable[bytes]) -> list[int]:
        """Append a vector of records as one batch frame (one lock
        acquisition, one CRC, one disk write).  Returns their LSNs.

        A torn tail inside the batch drops the *whole* batch (module
        docstring); the batch lands in one segment (the bound is soft).
        """
        body = bytearray()
        offsets: list[int] = []
        for payload in payloads:
            offsets.append(len(body))
            body += _SUB_LEN.pack(len(payload))
            body += payload
        return self.append_batch(body, offsets)

    def flush(self) -> None:
        """Force all appended records to stable storage.

        A failure propagates to the caller and panics the log (see
        module docstring); the flushed LSN does not advance.
        """
        with self._lock:
            self._check_panic()
            if self._flushed_lsn < self._next_lsn:
                self._flush_disk()

    def flush_until(self, lsn: int) -> int:
        """Force the record appended at ``lsn`` (and everything before
        it) to stable storage; a no-op if it is already durable.

        Because a flush forces the whole live segment (and sealed
        segments are durable by construction), the flushed LSN advances
        to the current append point, not just past ``lsn`` — the basis
        of group commit (:mod:`repro.storage.groupcommit`): one flush
        covers every record appended so far.  Returns the flushed LSN.
        """
        with self._lock:
            self._check_panic()
            if self._flushed_lsn <= lsn and self._flushed_lsn < self._next_lsn:
                self._flush_disk()
            return self._flushed_lsn

    def append_flush(self, payload: bytes,
                     on_lsn: Callable[[int], None] | None = None) -> int:
        """Append one record and force it (one-call force-at-commit)."""
        lsn = self.append(payload, on_lsn=on_lsn)
        self.flush()
        return lsn

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    # -- scanning ------------------------------------------------------------

    def scan(self, from_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield valid records starting at ``from_lsn``.

        ``from_lsn`` must be a record boundary — a classic frame start
        or a batch sub-record start — at or above :meth:`oldest_lsn`
        (reclaimed records cannot be scanned).  Stops silently at a
        torn tail of the live segment; raises
        :class:`CorruptRecordError` if valid data follows corruption or
        a sealed segment is damaged (mid-log damage).
        """
        with self._lock:
            segs = list(self._segs)
        for position, (index, base) in enumerate(segs):
            last = position == len(segs) - 1
            if not last and segs[position + 1][1] <= from_lsn:
                continue  # segment wholly below the scan start
            data = self.disk.read(self._seg_area(index))
            lsn_base = base - SEGMENT_HEADER_SIZE
            pos = SEGMENT_HEADER_SIZE
            while pos < len(data):
                if lsn_base + pos < from_lsn:
                    # Fast-skip frames wholly below the scan start from
                    # their headers alone (no CRC work for records the
                    # caller already consumed).  A frame *containing*
                    # ``from_lsn`` — a batch scanned from one of its
                    # sub-records — is parsed in full below and its
                    # too-early sub-records filtered out.
                    end = self._frame_end(data, pos)
                    if end is not None and lsn_base + end <= from_lsn:
                        pos = end
                        continue
                records, next_pos, ok = self._parse_frame(data, pos, lsn_base)
                if not ok:
                    lsn = lsn_base + pos
                    if not last or self._valid_record_after(data, pos + 1):
                        raise CorruptRecordError(
                            f"corrupt record at lsn {lsn} followed by valid data"
                        )
                    return
                for record in records:
                    if record.lsn >= from_lsn:
                        yield record
                pos = next_pos

    def records(self) -> list[WalRecord]:
        """All valid records, eagerly."""
        return list(self.scan())

    # -- log shipping (repro.replication) ------------------------------------

    def read_stream(self, from_lsn: int, upto_lsn: int | None = None) -> bytes:
        """Raw record-stream bytes in ``[from_lsn, upto_lsn)``.

        Segment headers are excluded — the result is a contiguous slice
        of the LSN-addressed stream, suitable for :meth:`ingest` on a
        standby's log (which frames its own segments).  ``from_lsn``
        must be at or above :meth:`oldest_lsn` (reclaimed bytes cannot
        be shipped; the shipper falls back to a full resync).
        ``upto_lsn`` defaults to the flushed LSN: only durable bytes
        ship, so a standby can never run ahead of its primary.
        """
        with self._lock:
            segs = list(self._segs)
            if upto_lsn is None:
                upto_lsn = self._flushed_lsn
        if from_lsn < segs[0][1]:
            raise ValueError(
                f"lsn {from_lsn} is below the oldest on-disk lsn "
                f"{segs[0][1]} (reclaimed by gc)"
            )
        chunks: list[bytes] = []
        for position, (index, base) in enumerate(segs):
            end = segs[position + 1][1] if position + 1 < len(segs) else None
            if end is not None and end <= from_lsn:
                continue
            if base >= upto_lsn:
                break
            stream = self.disk.read(self._seg_area(index))[SEGMENT_HEADER_SIZE:]
            lo = max(from_lsn - base, 0)
            hi = min(len(stream), upto_lsn - base)
            if hi > lo:
                chunks.append(stream[lo:hi])
        return b"".join(chunks)

    def ingest(self, data: bytes, expected_lsn: int) -> int:
        """Append raw shipped record-stream bytes (standby side).

        ``expected_lsn`` is the stream offset of ``data``'s first byte
        and must equal this log's append point — the shipper's cursor
        contract; a mismatch raises :class:`ValueError` so a buggy
        cursor cannot silently corrupt the mirror.  The bytes are
        buffered like any append; the caller flushes.  Returns the new
        append point.
        """
        with self._lock:
            self._check_panic()
            if not data:
                return self._next_lsn
            if expected_lsn != self._next_lsn:
                raise ValueError(
                    f"ingest at lsn {expected_lsn} but log area "
                    f"{self.area!r} is at lsn {self._next_lsn}"
                )
            self._maybe_roll_locked()
            self.disk.append(self._seg_area(self._segs[-1][0]), bytes(data))
            self._next_lsn += len(data)
            next_lsn = self._next_lsn
        self._m_appends.inc()
        self._m_bytes.inc(len(data))
        return next_lsn

    def reset_to(self, base_lsn: int) -> None:
        """Durably discard everything and restart the stream at
        ``base_lsn`` (which must be a frame boundary of the *source*
        stream — a segment base always is).  A standby uses this for a
        full resync when its cursor fell below the primary's
        :meth:`oldest_lsn`; the next :meth:`ingest` must start exactly
        at ``base_lsn``.
        """
        with self._lock:
            self._check_panic()
            for index, _base in self._segs:
                self.disk.delete(self._seg_area(index))
            self._segs = []
            self._create_segment(1, base_lsn)
            self._next_lsn = base_lsn
            self._flushed_lsn = base_lsn

    @staticmethod
    def _frame_end(data: bytes, pos: int) -> int | None:
        """End offset of the frame at ``pos`` from its header alone (no
        CRC verification), or None if the header is unrecognisable or
        the frame runs past the end of ``data``."""
        if pos + HEADER_SIZE > len(data):
            return None
        magic, length, _crc = _HEADER.unpack_from(data, pos)
        if magic != _MAGIC and magic != _BATCH_MAGIC:
            return None
        stop = pos + HEADER_SIZE + length
        return stop if stop <= len(data) else None

    @staticmethod
    def _parse_frame(data: bytes, pos: int,
                     lsn_base: int = 0) -> tuple[list[WalRecord], int, bool]:
        """Parse the frame at ``pos``: ``(records, next_pos, ok)``.

        ``lsn_base`` maps a buffer offset to a stream LSN (``base -
        SEGMENT_HEADER_SIZE`` for a segment buffer).  A classic frame
        yields one record; a batch frame yields one per sub-frame, all
        vouched for by the single batch CRC.  ``ok=False`` marks a
        torn or corrupt frame — for a batch, damage anywhere drops the
        *whole* batch, because the batch CRC cannot vouch for a prefix.
        """
        if pos + HEADER_SIZE > len(data):
            return [], pos, False
        magic, length, crc = _HEADER.unpack_from(data, pos)
        start = pos + HEADER_SIZE
        stop = start + length
        if stop > len(data):
            return [], pos, False
        if magic == _MAGIC:
            payload = data[start:stop]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return [], pos, False
            return (
                [WalRecord(lsn_base + pos, payload, end=lsn_base + stop)],
                stop, True,
            )
        if magic != _BATCH_MAGIC:
            return [], pos, False
        body = memoryview(data)[start:stop]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return [], pos, False
        records: list[WalRecord] = []
        sub = 0
        while sub < length:
            # A CRC-valid body can only be malformed through a software
            # bug; treat it as damage rather than crashing the parse.
            if sub + SUB_HEADER_SIZE > length:
                return [], pos, False
            (sub_len,) = _SUB_LEN.unpack_from(body, sub)
            sub_stop = sub + SUB_HEADER_SIZE + sub_len
            if sub_stop > length:
                return [], pos, False
            records.append(WalRecord(
                lsn_base + start + sub,
                bytes(body[sub + SUB_HEADER_SIZE:sub_stop]),
                end=lsn_base + start + sub_stop,
            ))
            sub = sub_stop
        return records, stop, True

    @classmethod
    def _valid_record_after(cls, data: bytes, start: int) -> bool:
        """Is there any parseable frame at/after ``start``?  Used to
        distinguish a torn tail (expected) from mid-log corruption."""
        pos = start
        # Bound the search: corruption checks are O(n) worst case but the
        # damaged window is normally tiny (one record).  Both frame
        # magics share their first byte, so one find covers both.
        while pos + HEADER_SIZE <= len(data):
            idx = data.find(_MAGIC_PREFIX, pos)
            if idx < 0:
                return False
            _records, _, ok = cls._parse_frame(data, idx)
            if ok:
                return True
            pos = idx + 1
        return False

    # -- truncation (checkpointing) -------------------------------------------

    def reset(self) -> None:
        """Durably discard the log (caller must have checkpointed all
        state it still needs — see :class:`repro.transaction.log.LogManager`).
        The LSN space restarts at 0."""
        with self._lock:
            # Refuse on panic: a checkpoint taken while commit durability
            # is unknowable must not destroy the durable log prefix.
            self._check_panic()
            for index, _base in self._segs:
                self.disk.delete(self._seg_area(index))
            self._segs = []
            self._create_segment(1, 0)
            self._next_lsn = 0
            self._flushed_lsn = 0
