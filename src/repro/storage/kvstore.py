"""Recoverable key-value store.

The application databases of the examples (bank accounts, orders,
inventory — and Section 6's "persistent database of locks") are tables
of this store.  It is a full resource manager:

* reads take ``IS`` on the table + ``S`` on the key; writes take ``IX``
  on the table + ``X`` on the key; scans take ``S`` on the table
  (multi-granularity locking, no phantoms);
* every write logs a redo record through the node's shared
  :class:`~repro.transaction.log.LogManager` before applying, and
  registers an in-memory undo with the transaction;
* :meth:`redo` is idempotent (last-writer-wins by key), so recovery may
  replay records already captured by a checkpoint;
* :meth:`snapshot` / :meth:`restore` support checkpoints.

Because updates are applied to volatile state *before* commit (redo-only
WAL, in-memory undo), a raw copy of ``_data`` would capture uncommitted
writes — poison for a *fuzzy* checkpoint, whose recovery replays no
records of transactions that later aborted.  :meth:`snapshot` therefore
returns the **committed view**: the store remembers, per key, the value
it had before the first uncommitted write (cleaned up by commit/abort
hooks) and reverts those keys in the copy.  Strict 2PL makes this exact:
a key has at most one uncommitted writer, and the hook that clears its
entry runs before the X lock is released.

Keys are strings; values are anything the codec supports.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.transaction.locks import LockMode
from repro.transaction.manager import Transaction


class KVStore:
    """One named, recoverable key-value table."""

    def __init__(self, name: str):
        self.rm_name = f"kv:{name}"
        self.name = name
        self._data: dict[str, Any] = {}
        self._mutex = threading.Lock()
        #: per-key pre-image of the first uncommitted write: key ->
        #: (had_key, old value); reverted by snapshot()
        self._dirty: dict[str, tuple[bool, Any]] = {}
        #: which keys each active transaction dirtied first
        self._dirty_txns: dict[int, set[str]] = {}

    # -- lock naming ----------------------------------------------------------

    def _table_resource(self) -> str:
        return self.rm_name

    def _key_resource(self, key: str) -> str:
        return f"{self.rm_name}/{key}"

    # -- transactional operations ----------------------------------------------

    def get(self, txn: Transaction, key: str, default: Any = None) -> Any:
        """Read ``key`` under ``S`` lock."""
        txn.lock(self._table_resource(), LockMode.IS)
        txn.lock(self._key_resource(key), LockMode.S)
        with self._mutex:
            return self._data.get(key, default)

    def exists(self, txn: Transaction, key: str) -> bool:
        txn.lock(self._table_resource(), LockMode.IS)
        txn.lock(self._key_resource(key), LockMode.S)
        with self._mutex:
            return key in self._data

    def put(self, txn: Transaction, key: str, value: Any) -> None:
        """Write ``key`` under ``X`` lock, logged for redo, undoable."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        txn.log_update(self.rm_name, {"op": "put", "key": key, "val": value})
        with self._mutex:
            had_key = key in self._data
            old = self._data.get(key)
            self._data[key] = value
            self._note_dirty(txn, key, had_key, old)
        txn.add_undo(self._make_undo(key, had_key, old))

    def delete(self, txn: Transaction, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        with self._mutex:
            had_key = key in self._data
            old = self._data.get(key)
        if not had_key:
            return False
        txn.log_update(self.rm_name, {"op": "del", "key": key})
        with self._mutex:
            self._data.pop(key, None)
            self._note_dirty(txn, key, had_key, old)
        txn.add_undo(self._make_undo(key, had_key, old))
        return True

    def update(
        self, txn: Transaction, key: str, fn: Callable[[Any], Any], default: Any = None
    ) -> Any:
        """Read-modify-write under ``X`` from the start (no upgrade
        deadlocks on hot keys)."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        with self._mutex:
            current = self._data.get(key, default)
        new_value = fn(current)
        self.put(txn, key, new_value)
        return new_value

    def scan(self, txn: Transaction, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Iterate (key, value) pairs in key order under a table ``S``
        lock (stable against concurrent writers)."""
        txn.lock(self._table_resource(), LockMode.S)
        with self._mutex:
            items = sorted(
                (k, v) for k, v in self._data.items() if k.startswith(prefix)
            )
        yield from items

    def count(self, txn: Transaction) -> int:
        txn.lock(self._table_resource(), LockMode.S)
        with self._mutex:
            return len(self._data)

    # -- committed-view bookkeeping ----------------------------------------------

    def _note_dirty(self, txn: Transaction, key: str, had_key: bool, old: Any) -> None:
        """Record the pre-image of ``key``'s first uncommitted write.

        Caller holds ``self._mutex``.  The X lock on ``key`` guarantees a
        single uncommitted writer, so a later write by the *same*
        transaction keeps the original pre-image.
        """
        if key in self._dirty:
            return
        self._dirty[key] = (had_key, old)
        keys = self._dirty_txns.get(txn.id)
        if keys is None:
            keys = self._dirty_txns[txn.id] = set()
            txn_id = txn.id
            txn.on_commit(lambda: self._clear_dirty(txn_id))
            txn.on_abort(lambda: self._clear_dirty(txn_id))
        keys.add(key)

    def _clear_dirty(self, txn_id: int) -> None:
        with self._mutex:
            for key in self._dirty_txns.pop(txn_id, ()):
                self._dirty.pop(key, None)

    def _make_undo(self, key: str, had_key: bool, old: Any) -> Callable[[], None]:
        def undo() -> None:
            with self._mutex:
                if had_key:
                    self._data[key] = old
                else:
                    self._data.pop(key, None)

        return undo

    # -- non-transactional inspection (monitoring/tests only) --------------------

    def peek(self, key: str, default: Any = None) -> Any:
        """Dirty read without locks — for assertions and monitors."""
        with self._mutex:
            return self._data.get(key, default)

    def size(self) -> int:
        with self._mutex:
            return len(self._data)

    # -- resource-manager protocol -------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        with self._mutex:
            if data["op"] == "put":
                self._data[data["key"]] = data["val"]
            elif data["op"] == "del":
                self._data.pop(data["key"], None)
            else:  # pragma: no cover - log corruption guard
                raise ValueError(f"unknown kvstore redo op {data['op']!r}")

    def snapshot(self) -> Any:
        """Committed view: the live table with every uncommitted write
        reverted to its pre-image (see module docstring)."""
        with self._mutex:
            data = dict(self._data)
            for key, (had_key, old) in self._dirty.items():
                if had_key:
                    data[key] = old
                else:
                    data.pop(key, None)
            return data

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._data = dict(state)
            self._dirty.clear()
            self._dirty_txns.clear()
