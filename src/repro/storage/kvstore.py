"""Recoverable key-value store.

The application databases of the examples (bank accounts, orders,
inventory — and Section 6's "persistent database of locks") are tables
of this store.  It is a full resource manager:

* reads take ``IS`` on the table + ``S`` on the key; writes take ``IX``
  on the table + ``X`` on the key; scans take ``S`` on the table
  (multi-granularity locking, no phantoms);
* every write logs a redo record through the node's shared
  :class:`~repro.transaction.log.LogManager` before applying, and
  registers an in-memory undo with the transaction;
* :meth:`redo` is idempotent (last-writer-wins by key), so recovery may
  replay records already captured by a checkpoint;
* :meth:`snapshot` / :meth:`restore` support checkpoints.

Keys are strings; values are anything the codec supports.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.transaction.locks import LockMode
from repro.transaction.manager import Transaction


class KVStore:
    """One named, recoverable key-value table."""

    def __init__(self, name: str):
        self.rm_name = f"kv:{name}"
        self.name = name
        self._data: dict[str, Any] = {}
        self._mutex = threading.Lock()

    # -- lock naming ----------------------------------------------------------

    def _table_resource(self) -> str:
        return self.rm_name

    def _key_resource(self, key: str) -> str:
        return f"{self.rm_name}/{key}"

    # -- transactional operations ----------------------------------------------

    def get(self, txn: Transaction, key: str, default: Any = None) -> Any:
        """Read ``key`` under ``S`` lock."""
        txn.lock(self._table_resource(), LockMode.IS)
        txn.lock(self._key_resource(key), LockMode.S)
        with self._mutex:
            return self._data.get(key, default)

    def exists(self, txn: Transaction, key: str) -> bool:
        txn.lock(self._table_resource(), LockMode.IS)
        txn.lock(self._key_resource(key), LockMode.S)
        with self._mutex:
            return key in self._data

    def put(self, txn: Transaction, key: str, value: Any) -> None:
        """Write ``key`` under ``X`` lock, logged for redo, undoable."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        txn.log_update(self.rm_name, {"op": "put", "key": key, "val": value})
        with self._mutex:
            had_key = key in self._data
            old = self._data.get(key)
            self._data[key] = value
        txn.add_undo(self._make_undo(key, had_key, old))

    def delete(self, txn: Transaction, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        with self._mutex:
            had_key = key in self._data
            old = self._data.get(key)
        if not had_key:
            return False
        txn.log_update(self.rm_name, {"op": "del", "key": key})
        with self._mutex:
            self._data.pop(key, None)
        txn.add_undo(self._make_undo(key, had_key, old))
        return True

    def update(
        self, txn: Transaction, key: str, fn: Callable[[Any], Any], default: Any = None
    ) -> Any:
        """Read-modify-write under ``X`` from the start (no upgrade
        deadlocks on hot keys)."""
        txn.lock(self._table_resource(), LockMode.IX)
        txn.lock(self._key_resource(key), LockMode.X)
        with self._mutex:
            current = self._data.get(key, default)
        new_value = fn(current)
        self.put(txn, key, new_value)
        return new_value

    def scan(self, txn: Transaction, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Iterate (key, value) pairs in key order under a table ``S``
        lock (stable against concurrent writers)."""
        txn.lock(self._table_resource(), LockMode.S)
        with self._mutex:
            items = sorted(
                (k, v) for k, v in self._data.items() if k.startswith(prefix)
            )
        yield from items

    def count(self, txn: Transaction) -> int:
        txn.lock(self._table_resource(), LockMode.S)
        with self._mutex:
            return len(self._data)

    def _make_undo(self, key: str, had_key: bool, old: Any) -> Callable[[], None]:
        def undo() -> None:
            with self._mutex:
                if had_key:
                    self._data[key] = old
                else:
                    self._data.pop(key, None)

        return undo

    # -- non-transactional inspection (monitoring/tests only) --------------------

    def peek(self, key: str, default: Any = None) -> Any:
        """Dirty read without locks — for assertions and monitors."""
        with self._mutex:
            return self._data.get(key, default)

    def size(self) -> int:
        with self._mutex:
            return len(self._data)

    # -- resource-manager protocol -------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        with self._mutex:
            if data["op"] == "put":
                self._data[data["key"]] = data["val"]
            elif data["op"] == "del":
                self._data.pop(data["key"], None)
            else:  # pragma: no cover - log corruption guard
                raise ValueError(f"unknown kvstore redo op {data['op']!r}")

    def snapshot(self) -> Any:
        with self._mutex:
            return dict(self._data)

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._data = dict(state)
