"""Deterministic binary codec for log records and snapshots.

Log records must be durable artifacts: inspectable, version-stable, and
free of arbitrary code execution on load — so ``pickle`` is out.  The
codec here is a compact type-length-value encoding covering exactly the
types the library persists:

``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
``list``/``tuple`` (decoded as ``list``), and ``dict`` with ``str``
keys.

Encoding is deterministic: dict items are written in insertion order
(callers that need canonical bytes sort their dicts first), integers
use a fixed zig-zag varint, floats use IEEE-754 big-endian.

Batched use: :func:`encode_into` appends a record to a caller-owned
(reusable) buffer so N records need one buffer and one framing pass,
and :func:`decode_from` reads one value at an offset from ``bytes`` or
a ``memoryview`` — recovery replay hands out sub-slices of a single
mapped batch without per-record byte copies.
"""

from __future__ import annotations

import struct
from typing import Any, Union

Buffer = Union[bytes, bytearray, memoryview]

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_DICT = b"M"

# decode compares integer tags: ``data[pos]`` is an int for bytes,
# bytearray, and memoryview alike, and avoids a slice object per value
_TAG_NONE = _T_NONE[0]
_TAG_TRUE = _T_TRUE[0]
_TAG_FALSE = _T_FALSE[0]
_TAG_INT = _T_INT[0]
_TAG_FLOAT = _T_FLOAT[0]
_TAG_STR = _T_STR[0]
_TAG_BYTES = _T_BYTES[0]
_TAG_LIST = _T_LIST[0]
_TAG_DICT = _T_DICT[0]


class CodecError(ValueError):
    """Raised for unsupported types on encode or malformed bytes on decode."""


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: Buffer, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # No shift cap: integers are arbitrary-precision; the loop is
        # bounded by the input length (pos advances every iteration).


def _bigzag(value: int) -> int:
    # Arbitrary-precision zig-zag: non-negative -> even, negative -> odd.
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


def encode_into(out: bytearray, obj: Any) -> None:
    """Append the encoding of ``obj`` to ``out``.

    The batched-append building block: callers reuse one buffer across
    N records (one allocation, one framing pass) instead of paying
    ``encode``'s fresh ``bytearray`` + ``bytes`` copy per record."""
    _encode_into(out, obj)


def _encode_into(out: bytearray, obj: Any) -> None:
    # Exact-type dispatch (``type(obj) is …``) ordered by hot-path
    # frequency — log records are dicts of str keys, small ints, and
    # short strings — with inlined one-byte varints for the < 0x80
    # values that dominate lengths and ids.  Subclasses (IntEnum,
    # namedtuple, …) fall through to the general isinstance chain.
    kind = type(obj)
    if kind is str:
        raw = obj.encode("utf-8")
        length = len(raw)
        out += _T_STR
        if length < 0x80:
            out.append(length)
        else:
            _write_varint(out, length)
        out += raw
    elif kind is int:
        zig = obj + obj if obj >= 0 else -obj - obj - 1
        out += _T_INT
        if zig < 0x80:
            out.append(zig)
        else:
            _write_varint(out, zig)
    elif kind is dict:
        length = len(obj)
        out += _T_DICT
        if length < 0x80:
            out.append(length)
        else:
            _write_varint(out, length)
        for key, value in obj.items():
            if type(key) is not str:
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            klen = len(raw)
            if klen < 0x80:
                out.append(klen)
            else:
                _write_varint(out, klen)
            out += raw
            _encode_into(out, value)
    elif obj is None:
        out += _T_NONE
    elif obj is True:
        out += _T_TRUE
    elif obj is False:
        out += _T_FALSE
    elif kind is list or kind is tuple:
        length = len(obj)
        out += _T_LIST
        if length < 0x80:
            out.append(length)
        else:
            _write_varint(out, length)
        for item in obj:
            _encode_into(out, item)
    elif kind is float:
        out += _T_FLOAT
        out += struct.pack(">d", obj)
    elif kind is bytes or kind is bytearray or kind is memoryview:
        raw = bytes(obj)
        out += _T_BYTES
        _write_varint(out, len(raw))
        out += raw
    # --- subclass fallbacks (cold) -----------------------------------
    elif isinstance(obj, int):
        out += _T_INT
        _write_varint(out, _bigzag(int(obj)))
    elif isinstance(obj, float):
        out += _T_FLOAT
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        raw = str(obj).encode("utf-8")
        out += _T_STR
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out += _T_BYTES
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(obj, (list, tuple)):
        out += _T_LIST
        _write_varint(out, len(obj))
        for item in obj:
            _encode_into(out, item)
    elif isinstance(obj, dict):
        out += _T_DICT
        _write_varint(out, len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
            _encode_into(out, value)
    else:
        raise CodecError(f"unsupported type: {type(obj).__name__}")


def encode(obj: Any) -> bytes:
    """Encode ``obj`` to bytes.  Raises :class:`CodecError` on unsupported
    types (including dicts with non-string keys)."""
    out = bytearray()
    _encode_into(out, obj)
    return bytes(out)


def decode_from(data: Buffer, pos: int) -> tuple[Any, int]:
    """Decode one value at ``pos``; returns ``(value, next_pos)``.

    Accepts ``bytes``, ``bytearray``, or a ``memoryview`` — the latter
    lets recovery replay decode records straight out of one mapped
    batch buffer with no per-record slice copy (``str``/``bytes``
    leaves materialise their own payload; the framing never does)."""
    return _decode_from(data, pos)


def _decode_from(data: Buffer, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string")
        return str(data[pos : pos + length], "utf-8"), pos + length
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated bytes")
        return bytes(data[pos : pos + length]), pos + length
    if tag == _TAG_LIST:
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        result: dict[str, Any] = {}
        for _ in range(count):
            klen, pos = _read_varint(data, pos)
            if pos + klen > len(data):
                raise CodecError("truncated dict key")
            key = str(data[pos : pos + klen], "utf-8")
            pos += klen
            value, pos = _decode_from(data, pos)
            result[key] = value
        return result, pos
    raise CodecError(f"unknown type tag {chr(tag)!r}")


def decode(data: Buffer) -> Any:
    """Decode bytes produced by :func:`encode`.  Raises
    :class:`CodecError` on malformed input or trailing garbage."""
    obj, pos = _decode_from(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after value")
    return obj
