"""Disk-level fault injection: the :class:`FaultyDisk` decorator.

Crash simulation (:class:`~repro.storage.disk.MemDisk.crash`) models a
disk that *stops*; real storage also *lies* — I/O calls fail
transiently, devices fill up, media silently decays.  ``FaultyDisk``
wraps any :class:`~repro.storage.disk.Disk` and injects those failure
modes deterministically so the chaos campaign (:mod:`repro.chaos`) can
search the combined fault space and replay any failure from its seed.

Fault kinds (:data:`IO_ERROR`, :data:`DISK_FULL`, :data:`PERMANENT`,
:data:`CORRUPT`):

* ``io_error`` — the targeted call raises
  :class:`~repro.errors.DiskIOError` *instead of* executing, for
  ``duration`` consecutive calls (default 1, i.e. transient).  The
  operation has **no effect**: an append that raised appended nothing,
  a flush that raised made nothing durable.
* ``disk_full`` — same no-effect contract, raising
  :class:`~repro.errors.DiskFullError` (only meaningful on the write
  paths ``append``/``replace``).
* ``permanent`` — from the targeted call on, *every* operation raises
  :class:`~repro.errors.DiskIOError` until :meth:`FaultyDisk.heal`.
* ``corrupt`` — one durable byte of the call's area is bit-flipped
  (via :meth:`~repro.storage.disk.Disk.corrupt_byte`) and the call then
  proceeds normally.  The offset is drawn from the seeded RNG within
  the first half of the durable image, so with many small records the
  log keeps valid data *after* the damage and recovery deterministically
  takes the :class:`~repro.errors.CorruptRecordError` path instead of
  mistaking the damage for a torn tail.

Faults are scheduled two ways, composable:

* a **plan**: explicit :class:`DiskFault` entries targeting the N-th
  call of an operation (optionally restricted to one area).  Plans are
  what the chaos engine samples from a seed — and what its shrinker
  drops entries from;
* **rates**: a per-operation probability of a transient ``io_error``,
  drawn from the seeded RNG on every call (property tests).

Everything not overridden (``crash``/``recover``/``durable_read``/
benchmark counters…) is delegated to the wrapped disk, so a
``FaultyDisk(MemDisk())`` drops into every place a ``MemDisk`` goes.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import DiskFullError, DiskIOError
from repro.obs import Observability, get_observability
from repro.storage.disk import Disk

#: operations a fault can target
OPS = ("append", "flush", "read", "replace", "truncate", "delete")

IO_ERROR = "io_error"
DISK_FULL = "disk_full"
PERMANENT = "permanent"
CORRUPT = "corrupt"
FAULT_KINDS = (IO_ERROR, DISK_FULL, PERMANENT, CORRUPT)


@dataclass(frozen=True)
class DiskFault:
    """Inject one fault at the ``hit``-th call of ``op`` (1-based).

    ``area`` restricts matching to calls on that area (the hit counter
    then counts only those calls).  ``duration`` extends ``io_error`` /
    ``disk_full`` over that many consecutive matching calls.
    """

    op: str
    hit: int = 1
    kind: str = IO_ERROR
    area: str | None = None
    duration: int = 1

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.hit < 1:
            raise ValueError(f"hit must be >= 1, got {self.hit}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"op": self.op, "hit": self.hit, "kind": self.kind}
        if self.area is not None:
            record["area"] = self.area
        if self.duration != 1:
            record["duration"] = self.duration
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "DiskFault":
        return cls(
            op=record["op"],
            hit=record.get("hit", 1),
            kind=record.get("kind", IO_ERROR),
            area=record.get("area"),
            duration=record.get("duration", 1),
        )


@dataclass
class InjectedFault:
    """One fault that actually fired (for reports and shrinking)."""

    fault: DiskFault
    op: str
    area: str
    call: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.fault.kind}@{self.op}#{self.call}({self.area})"


class FaultyDisk(Disk):
    """Decorator over any :class:`Disk` that injects seeded I/O faults.

    Thread-safe (a single lock guards the fault bookkeeping; the
    wrapped disk provides its own I/O atomicity).
    """

    def __init__(
        self,
        inner: Disk,
        faults: Iterable[DiskFault] = (),
        seed: int = 0,
        rates: dict[str, float] | None = None,
        obs: Observability | None = None,
    ):
        self.inner = inner
        self.plan: list[DiskFault] = list(faults)
        self.rates = dict(rates or {})
        self._rng = random.Random(seed)
        self._mutex = threading.Lock()
        self._counts: Counter[tuple[str, str | None]] = Counter()
        self._dead: DiskFault | None = None
        #: faults that fired, in order
        self.injected: list[InjectedFault] = []
        obs = obs if obs is not None else get_observability()
        self._m_faults = obs.metrics.counter(
            "disk_faults_injected_total",
            "disk faults injected by FaultyDisk", ("op", "kind"),
        )
        self._flight = obs.flight

    # -- configuration -----------------------------------------------------

    def add_fault(self, fault: DiskFault) -> None:
        with self._mutex:
            self.plan.append(fault)

    def heal(self) -> None:
        """Clear the remaining plan, all rates, and any permanent
        failure; injected-fault history is preserved."""
        with self._mutex:
            self.plan.clear()
            self.rates.clear()
            self._dead = None

    def revive(self) -> None:
        """Clear only a ``permanent`` failure, keeping the remaining
        plan and rates — the chaos engine's restart protocol: replacing
        a failed device brings the node back, but the not-yet-fired
        faults of the schedule still lie ahead."""
        with self._mutex:
            self._dead = None

    @property
    def dead(self) -> bool:
        """True while a ``permanent`` fault holds the device down."""
        return self._dead is not None

    # -- fault decision ----------------------------------------------------

    def _record(self, fault: DiskFault, op: str, area: str, call: int) -> None:
        self.injected.append(InjectedFault(fault, op, area, call))
        self._m_faults.labels(op=op, kind=fault.kind).inc()
        self._flight.record("disk.fault", op=op, area=area,
                            fault=fault.kind, call=call)

    def _consult(self, op: str, area: str) -> DiskFault | None:
        """Advance the hit counters and return the fault to apply to
        this call, recording it.  ``corrupt`` faults are applied here
        (the call then proceeds); error faults are returned for the
        caller to raise *before* touching the inner disk."""
        with self._mutex:
            if self._dead is not None:
                fault = self._dead
                self._record(fault, op, area, self._counts[(op, None)] + 1)
                return fault
            self._counts[(op, None)] += 1
            self._counts[(op, area)] += 1
            matched: DiskFault | None = None
            for fault in self.plan:
                if fault.op != op:
                    continue
                if fault.area is not None and fault.area != area:
                    continue
                call = self._counts[(op, fault.area)]
                if fault.hit <= call < fault.hit + fault.duration:
                    matched = fault
                    break
            if matched is None:
                rate = self.rates.get(op, 0.0)
                if rate > 0.0 and self._rng.random() < rate:
                    matched = DiskFault(op=op, hit=self._counts[(op, None)])
            if matched is None:
                return None
            if matched.kind == PERMANENT:
                self._dead = matched
            self._record(matched, op, area, self._counts[(op, None)])
            if matched.kind == CORRUPT:
                self._corrupt(area)
                return None
            return matched

    def _corrupt(self, area: str) -> None:
        """Flip one durable bit in ``area`` (first half of the image,
        so valid records typically remain after the damage)."""
        size = len(self._durable_image(area))
        if size == 0:
            return
        offset = self._rng.randrange(max(1, size // 2))
        mask = 1 << self._rng.randrange(8)
        self.inner.corrupt_byte(area, offset, mask)

    def _durable_image(self, area: str) -> bytes:
        durable_read = getattr(self.inner, "durable_read", None)
        if durable_read is not None:
            return durable_read(area)
        return self.inner.read(area)

    @staticmethod
    def _raise(fault: DiskFault, op: str, area: str) -> None:
        if fault.kind == DISK_FULL:
            raise DiskFullError(f"disk full: {op} on {area!r}")
        if fault.kind == PERMANENT:
            raise DiskIOError(f"permanent device failure: {op} on {area!r}")
        raise DiskIOError(f"injected I/O error: {op} on {area!r}")

    # -- Disk interface ----------------------------------------------------

    def append(self, area: str, data: bytes) -> int:
        fault = self._consult("append", area)
        if fault is not None:
            self._raise(fault, "append", area)
        return self.inner.append(area, data)

    def flush(self, area: str) -> None:
        fault = self._consult("flush", area)
        if fault is not None:
            self._raise(fault, "flush", area)
        self.inner.flush(area)

    def read(self, area: str) -> bytes:
        fault = self._consult("read", area)
        if fault is not None:
            self._raise(fault, "read", area)
        return self.inner.read(area)

    def replace(self, area: str, data: bytes) -> None:
        fault = self._consult("replace", area)
        if fault is not None:
            self._raise(fault, "replace", area)
        self.inner.replace(area, data)

    def truncate(self, area: str) -> None:
        fault = self._consult("truncate", area)
        if fault is not None:
            self._raise(fault, "truncate", area)
        self.inner.truncate(area)

    def delete(self, area: str) -> None:
        fault = self._consult("delete", area)
        if fault is not None:
            self._raise(fault, "delete", area)
        self.inner.delete(area)

    def areas(self) -> list[str]:
        return self.inner.areas()

    def size(self, area: str) -> int:
        # No fault point: size() is bookkeeping, not I/O.
        return self.inner.size(area)

    def corrupt_byte(self, area: str, offset: int, mask: int = 0x01) -> bool:
        return self.inner.corrupt_byte(area, offset, mask)

    # -- passthrough (crash semantics, counters, durable_read, ...) --------

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
