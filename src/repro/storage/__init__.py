"""Stable-storage substrate.

The paper assumes only two properties of storage (Sections 2, 4, 10):

* a *stable* write survives node crashes (force-at-commit logging), and
* everything else — process memory, unflushed buffers — is lost.

This package provides exactly that model:

* :mod:`repro.storage.codec` — a small, deterministic binary codec used
  for all log records and snapshots (no pickle: records must be
  inspectable and version-stable).
* :mod:`repro.storage.disk` — :class:`~repro.storage.disk.MemDisk`, an
  in-memory disk with explicit flush and crash semantics (unflushed
  data lost; optionally a torn tail is left behind), and
  :class:`~repro.storage.disk.FileDisk`, the same interface backed by
  real files with ``fsync`` for the runnable examples.
* :mod:`repro.storage.wal` — a CRC-framed, torn-write-tolerant
  write-ahead log on top of a disk area.
* :mod:`repro.storage.groupcommit` — the group-commit coordinator that
  coalesces concurrent force-at-commit flushes into single ``fsync``s.
* :mod:`repro.storage.kvstore` — a recoverable key-value table that
  participates in transactions (redo logging through the shared
  :class:`~repro.transaction.log.LogManager`, in-memory undo).
"""

from repro.storage.codec import encode, decode
from repro.storage.disk import Disk, MemDisk, FileDisk
from repro.storage.groupcommit import GroupCommitConfig, GroupCommitter
from repro.storage.wal import WriteAheadLog, WalRecord

__all__ = [
    "encode",
    "decode",
    "Disk",
    "MemDisk",
    "FileDisk",
    "GroupCommitConfig",
    "GroupCommitter",
    "WriteAheadLog",
    "WalRecord",
]
