"""Simulated stable storage.

A *disk* holds named byte areas (think: files).  The model captures the
two facts the paper's protocols rely on:

* data is durable only after an explicit :meth:`Disk.flush`
  (``fsync``); and
* a crash loses everything unflushed — possibly leaving a *torn tail*,
  a partial prefix of the unflushed bytes, which the WAL's CRC framing
  must detect and discard.

:class:`MemDisk` is the in-memory implementation used by tests and
benchmarks; its :meth:`MemDisk.crash` applies the crash semantics while
the object itself survives, modelling a disk that outlives its node.
:class:`FileDisk` backs the same interface with real files + ``fsync``
for the runnable examples.

Atomic replacement (:meth:`Disk.replace`) models the standard
write-temp-file / ``fsync`` / ``rename`` idiom used for checkpoints: it
is all-or-nothing even across a crash.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod

from repro.errors import DiskCrashedError


class Disk(ABC):
    """Abstract stable storage: named append-only areas with explicit
    durability, plus atomically-replaceable areas for checkpoints."""

    @abstractmethod
    def append(self, area: str, data: bytes) -> int:
        """Append ``data`` to ``area`` (buffered, not yet durable).
        Returns the byte offset at which the data begins."""

    @abstractmethod
    def flush(self, area: str) -> None:
        """Make all appended data in ``area`` durable."""

    @abstractmethod
    def read(self, area: str) -> bytes:
        """Return the full current contents of ``area`` as a live process
        sees it (durable + buffered).  Missing areas read as empty."""

    @abstractmethod
    def replace(self, area: str, data: bytes) -> None:
        """Atomically and durably replace the contents of ``area``."""

    @abstractmethod
    def truncate(self, area: str) -> None:
        """Durably discard the contents of ``area``."""

    @abstractmethod
    def delete(self, area: str) -> None:
        """Durably remove ``area`` entirely (``unlink`` + directory
        fsync).  After deletion the area no longer appears in
        :meth:`areas`; deleting a missing area is a no-op.  This is how
        the segmented WAL reclaims sealed log segments after a
        checkpoint."""

    @abstractmethod
    def areas(self) -> list[str]:
        """Names of all existing areas."""

    def size(self, area: str) -> int:
        """Current length of ``area`` in bytes (durable + buffered).

        Implementations should make this O(1): the checkpointer polls
        it on the commit path to decide when a checkpoint is due.
        """
        return len(self.read(area))

    def corrupt_byte(self, area: str, offset: int, mask: int = 0x01) -> bool:
        """Flip bits of one **durable** byte (fault-injection hook).

        Models silent media corruption: the byte at ``offset`` of the
        durable image of ``area`` is XORed with ``mask``.  Returns False
        when the area has no durable byte at that offset.  Backends
        without a usable implementation may leave this unsupported.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support corruption injection"
        )


class MemDisk(Disk):
    """In-memory disk with crash semantics.

    Thread-safe: a single lock guards all state, matching the
    atomic-sector assumption of real disks.

    Parameters
    ----------
    torn_tail_bytes:
        When the disk crashes, this many bytes of the *unflushed* buffer
        (per area) survive as a torn tail.  The default of 0 models a
        clean cut at the last flush; tests use positive values to
        exercise CRC-based torn-write recovery.
    """

    def __init__(self, torn_tail_bytes: int = 0):
        self._durable: dict[str, bytearray] = {}
        self._buffer: dict[str, bytearray] = {}
        self._lock = threading.Lock()
        self._crashed = False
        self.torn_tail_bytes = torn_tail_bytes
        #: counters for benchmarks: how many flushes/appends happened
        self.flush_count = 0
        self.append_count = 0
        self.bytes_written = 0
        self.delete_count = 0

    def _check(self) -> None:
        if self._crashed:
            raise DiskCrashedError("disk is in crashed state; call recover() first")

    def append(self, area: str, data: bytes) -> int:
        with self._lock:
            self._check()
            durable = self._durable.setdefault(area, bytearray())
            buffer = self._buffer.setdefault(area, bytearray())
            offset = len(durable) + len(buffer)
            buffer += data
            self.append_count += 1
            self.bytes_written += len(data)
            return offset

    def flush(self, area: str) -> None:
        with self._lock:
            self._check()
            buffer = self._buffer.get(area)
            if buffer:
                self._durable.setdefault(area, bytearray()).extend(buffer)
                buffer.clear()
            self.flush_count += 1

    def read(self, area: str) -> bytes:
        with self._lock:
            self._check()
            durable = self._durable.get(area, bytearray())
            buffer = self._buffer.get(area, bytearray())
            return bytes(durable) + bytes(buffer)

    def replace(self, area: str, data: bytes) -> None:
        with self._lock:
            self._check()
            self._durable[area] = bytearray(data)
            self._buffer[area] = bytearray()
            self.flush_count += 1

    def truncate(self, area: str) -> None:
        with self._lock:
            self._check()
            self._durable[area] = bytearray()
            self._buffer[area] = bytearray()

    def delete(self, area: str) -> None:
        with self._lock:
            self._check()
            self._durable.pop(area, None)
            self._buffer.pop(area, None)
            self.delete_count += 1

    def areas(self) -> list[str]:
        with self._lock:
            return sorted(set(self._durable) | set(self._buffer))

    def size(self, area: str) -> int:
        with self._lock:
            self._check()
            return len(self._durable.get(area, b"")) + len(
                self._buffer.get(area, b"")
            )

    # -- crash semantics ---------------------------------------------------

    def crash(self) -> None:
        """Lose all unflushed data (keeping a torn tail of
        ``torn_tail_bytes`` per area) and refuse I/O until
        :meth:`recover` is called."""
        with self._lock:
            for area, buffer in self._buffer.items():
                if buffer and self.torn_tail_bytes > 0:
                    tail = bytes(buffer[: self.torn_tail_bytes])
                    self._durable.setdefault(area, bytearray()).extend(tail)
                buffer.clear()
            self._crashed = True

    def recover(self) -> None:
        """Bring the disk back online after :meth:`crash`."""
        with self._lock:
            self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def durable_read(self, area: str) -> bytes:
        """What would survive a crash right now (test/inspection hook)."""
        with self._lock:
            return bytes(self._durable.get(area, bytearray()))

    def corrupt_byte(self, area: str, offset: int, mask: int = 0x01) -> bool:
        with self._lock:
            durable = self._durable.get(area)
            if durable is None or not 0 <= offset < len(durable):
                return False
            durable[offset] ^= mask & 0xFF
            return True


class FileDisk(Disk):
    """Real-file-backed disk for the runnable examples.

    Areas map to files under ``root``; :meth:`flush` calls ``fsync``;
    :meth:`replace` uses the write-temp / fsync / rename idiom so it is
    atomic on POSIX filesystems.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._handles: dict[str, object] = {}
        self._lock = threading.Lock()
        # Logical area sizes (durable + userspace-buffered), maintained
        # incrementally so size() never has to stat or read a file on
        # the hot path once an area has been touched.
        self._sizes: dict[str, int] = {}
        #: counters for benchmarks, mirroring :class:`MemDisk`
        self.flush_count = 0
        self.append_count = 0
        self.bytes_written = 0
        self.delete_count = 0

    def _path(self, area: str) -> str:
        safe = area.replace("/", "__")
        return os.path.join(self.root, safe)

    def _handle(self, area: str):
        handle = self._handles.get(area)
        if handle is None:
            handle = open(self._path(area), "ab")
            self._handles[area] = handle
        return handle

    def append(self, area: str, data: bytes) -> int:
        with self._lock:
            handle = self._handle(area)
            offset = handle.tell()
            handle.write(data)
            self._sizes[area] = offset + len(data)
            self.append_count += 1
            self.bytes_written += len(data)
            return offset

    def flush(self, area: str) -> None:
        with self._lock:
            handle = self._handles.get(area)
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
            self.flush_count += 1

    def read(self, area: str) -> bytes:
        with self._lock:
            handle = self._handles.get(area)
            if handle is not None:
                handle.flush()
            path = self._path(area)
            if not os.path.exists(path):
                return b""
            with open(path, "rb") as f:
                return f.read()

    def replace(self, area: str, data: bytes) -> None:
        with self._lock:
            handle = self._handles.pop(area, None)
            if handle is not None:
                handle.close()
            path = self._path(area)
            tmp = path + ".tmp"
            with open(tmp, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            # The rename itself lives in the directory, not the file: on
            # POSIX a power failure after os.replace can still revert to
            # the old name unless the parent directory is fsynced.  For
            # a checkpoint that would mean the checkpoint "vanishes"
            # while the log it replaced is already truncated.
            self._fsync_dir()
            self._sizes[area] = len(data)
            self.flush_count += 1

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, area: str) -> None:
        self.replace(area, b"")

    def delete(self, area: str) -> None:
        with self._lock:
            handle = self._handles.pop(area, None)
            if handle is not None:
                handle.close()
            path = self._path(area)
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
            else:
                # Like replace(): the unlink lives in the directory
                # entry, so it is durable only once the parent is
                # fsynced.  GC must not "undelete" a segment on crash.
                self._fsync_dir()
            self._sizes.pop(area, None)
            self.delete_count += 1

    def areas(self) -> list[str]:
        with self._lock:
            names = [
                n for n in os.listdir(self.root) if not n.endswith(".tmp")
            ]
            return sorted(n.replace("__", "/") for n in names)

    def size(self, area: str) -> int:
        with self._lock:
            cached = self._sizes.get(area)
            if cached is not None:
                return cached
            handle = self._handles.get(area)
            if handle is not None:
                size = handle.tell()
            else:
                try:
                    size = os.stat(self._path(area)).st_size
                except FileNotFoundError:
                    size = 0
            self._sizes[area] = size
            return size

    def corrupt_byte(self, area: str, offset: int, mask: int = 0x01) -> bool:
        with self._lock:
            handle = self._handles.get(area)
            if handle is not None:
                handle.flush()
            path = self._path(area)
            if not os.path.exists(path) or offset < 0:
                return False
            with open(path, "r+b") as f:
                f.seek(0, os.SEEK_END)
                if offset >= f.tell():
                    return False
                f.seek(offset)
                byte = f.read(1)
                f.seek(offset)
                f.write(bytes([byte[0] ^ (mask & 0xFF)]))
            return True

    def close(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()
