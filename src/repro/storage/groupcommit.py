"""Group commit: amortize force-at-commit across concurrent committers.

Section 10 prescribes force-at-commit logging, and the cost of that
force — one ``fsync`` per transaction — is what caps commit throughput
(Gray, *Queues Are Databases*).  The standard cure is to batch the
durability point: committers append their ``cmt`` record and then
*park* on a :class:`GroupCommitter`; one of them (the *leader*) runs a
single :meth:`~repro.storage.wal.WriteAheadLog.flush_until`, and every
transaction whose record the flush covered wakes and returns.  The
synchronous contract is unchanged — ``commit()`` still returns only
after the commit record is durable — but N concurrent commits now cost
one flush instead of N.

Batching comes from two mechanisms:

* **flush-in-progress coalescing** (always on): committers that arrive
  while a flush is running park; when the leader finishes, one of them
  leads the *next* group, whose single flush covers everyone parked so
  far.  With a real ``fsync`` in the milliseconds this alone batches
  aggressively; it adds zero latency when there is no concurrency.
* **a bounded wait window** (``max_wait`` > 0): the leader lingers up
  to ``max_wait`` seconds — or until ``max_batch`` committers are
  parked — before flushing, trading a little latency for larger
  groups.  This is Postgres's ``commit_delay`` / MySQL's
  ``binlog_group_commit_sync_delay`` knob; the default of 0 keeps
  single-threaded paths exactly as fast as before.

Crash points (for :class:`~repro.sim.crash.FaultInjector`):

* ``wal.<area>.group_flush.before`` — records of the current group are
  appended but not yet durable: a crash here must lose every
  transaction in the group (none of their ``commit()`` calls returned).
* ``wal.<area>.group_flush.after`` — the group is durable: all its
  transactions must survive recovery.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass

from repro.obs import Observability, get_observability
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.storage.wal import WriteAheadLog

#: Buckets for the batch-size histogram (committers per flush).
BATCH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class GroupCommitConfig:
    """Tuning knobs for one node's group-commit coordinator.

    ``enabled=False`` restores the seed behaviour (a private
    ``append_flush`` per forced record).
    """

    enabled: bool = True
    #: how long the leader lingers for company before flushing (seconds);
    #: 0 flushes immediately (batching then comes only from coalescing
    #: around an in-progress flush)
    max_wait: float = 0.0
    #: flush as soon as this many committers are parked, even inside the
    #: wait window
    max_batch: int = 64

    def __post_init__(self) -> None:
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


#: Module-level default (group commit on, no wait window).
DEFAULT_CONFIG = GroupCommitConfig()


class GroupCommitter:
    """Coalesces concurrent log forces into single flushes.

    Thread-safe.  :meth:`sync` blocks until the record appended at
    ``lsn`` is durable; concurrent callers share flushes.  Exceptions
    from the underlying flush (e.g. a crashed disk) propagate to every
    caller whose record did not become durable — ``sync`` never returns
    successfully for a non-durable record.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        config: GroupCommitConfig | None = None,
        injector: FaultInjector | None = None,
        obs: Observability | None = None,
    ):
        self.wal = wal
        self.config = config if config is not None else DEFAULT_CONFIG
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._cond = threading.Condition()
        #: True while one thread is forming or flushing a group
        self._leader = False
        #: committers currently parked on the coordinator (incl. leader)
        self._waiters = 0
        self._point_before = f"wal.{wal.area}.group_flush.before"
        self._point_after = f"wal.{wal.area}.group_flush.after"
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_groups = metrics.counter(
            "wal_group_commits_total",
            "group flushes performed by the commit coordinator", ("area",)
        ).labels(area=wal.area)
        self._m_piggybacked = metrics.counter(
            "wal_group_commit_piggybacked_total",
            "commit forces satisfied by another transaction's flush", ("area",)
        ).labels(area=wal.area)
        self._m_forced = metrics.counter(
            "wal_group_commit_forced_total",
            "commit forces that ran the group's flush themselves (leaders)",
            ("area",)
        ).labels(area=wal.area)
        self._m_batch = metrics.histogram(
            "wal_group_commit_batch_size",
            "committers covered by one group flush", ("area",),
            buckets=BATCH_BUCKETS,
        ).labels(area=wal.area)
        self._obs_on = obs.enabled
        wait = metrics.histogram(
            "wal_group_commit_wait_seconds",
            "time one committer spends parked in sync(), by role: the "
            "leader runs the flush, a follower piggybacks on it",
            ("area", "role"),
        )
        self._m_wait_leader = wait.labels(area=wal.area, role="leader")
        self._m_wait_follower = wait.labels(area=wal.area, role="follower")

    def sync(self, lsn: int) -> None:
        """Block until the record appended at ``lsn`` is durable.

        The caller must have appended the record already (``sync`` is
        the park-after-append half of force-at-commit).
        """
        start = _time.perf_counter() if self._obs_on else 0.0
        cond = self._cond
        max_batch = self.config.max_batch
        with cond:
            if self.wal.flushed_lsn > lsn:
                self._m_piggybacked.inc()
                if self._obs_on:
                    self._m_wait_follower.observe(_time.perf_counter() - start)
                return
            self._waiters += 1
            # The leader is not counted in _waiters while it lingers in
            # its wait window; wake it as soon as the group is full.
            if self._waiters + (1 if self._leader else 0) >= max_batch:
                cond.notify_all()
            try:
                while self._leader:
                    cond.wait()
                    if self.wal.flushed_lsn > lsn:
                        self._m_piggybacked.inc()
                        if self._obs_on:
                            self._m_wait_follower.observe(
                                _time.perf_counter() - start
                            )
                        return
                # No flush in progress and our record is not durable:
                # lead the next group.
                self._leader = True
            finally:
                self._waiters -= 1
            if self.config.max_wait > 0 and self._waiters + 1 < max_batch:
                deadline = _time.monotonic() + self.config.max_wait
                while self._waiters + 1 < max_batch:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        break
                    cond.wait(remaining)
            batch = self._waiters + 1  # parked committers + us
        try:
            # Flush outside the condition so committers can keep
            # appending and parking for the next group meanwhile.
            self.injector.reach(self._point_before)
            self.wal.flush_until(lsn)
            self.injector.reach(self._point_after)
        finally:
            with cond:
                self._leader = False
                cond.notify_all()
        self._m_forced.inc()
        self._m_groups.inc()
        self._m_batch.observe(batch)
        if self._obs_on:
            self._m_wait_leader.observe(_time.perf_counter() - start)

    def append_sync(self, payload: bytes, on_lsn=None) -> int:
        """Append one record and group-force it; returns its LSN.

        ``on_lsn`` is forwarded to :meth:`WriteAheadLog.append` (invoked
        under the log lock, before the force).
        """
        lsn = self.wal.append(payload, on_lsn=on_lsn)
        self.sync(lsn)
        return lsn

    def append_batch_sync(self, body, offsets, on_lsns=None) -> list[int]:
        """Append a pre-framed batch and group-force it; returns the
        batch's LSNs (see :meth:`WriteAheadLog.append_batch`).

        One flush makes the whole batch durable — forcing the last
        record forces everything before it — so a batched commit costs
        the same single (possibly shared) flush as a lone commit record.
        """
        lsns = self.wal.append_batch(body, offsets, on_lsns=on_lsns)
        self.sync(lsns[-1])
        return lsns
