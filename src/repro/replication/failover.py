"""Failover orchestration: replica sets and the promotion ledger.

A :class:`ReplicaSet` pairs every shard of one
:class:`~repro.queueing.sharded.ShardedRepository` with a
:class:`~repro.replication.standby.StandbyShard` and its
:class:`~repro.replication.shipper.LogShipper`.

A :class:`FailoverController` is the durable half: before a standby
image is handed out for a primary boot, the promotion — shard index,
generation, promoted LSN, reason — is recorded with an atomic+durable
``replace`` on the controller's own disk.  A controller restart
therefore always knows which generation is authoritative for each
shard, so a deposed primary can never be re-adopted by amnesia.

Fencing is two-layered and happens *before* the standby image leaves
the building:

* **storage fence** — the old primary's WAL is fenced
  (:class:`~repro.errors.WalFencedError` on any late append/flush), so
  a zombie process that wakes up mid-commit cannot land bytes that the
  promoted history does not contain; and
* **epoch fence** — the promoted repository's boot bumps the shard's
  durable epoch (the PR-4 machinery), so its 2PC coordinator gids
  (``<name>.s<i>.e<epoch>``) supersede the old primary's: a zombie
  coordinator's decisions are for gids no surviving participant will
  ever again prepare under.

Promotion order: fence → drain (deliver every primary-acknowledged
byte from the tee buffer) → detach → durably record → release image.
Draining before recording means the promoted LSN in the ledger is
exactly the boundary clients can rely on: everything the old primary
acknowledged is at or below it.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs import Observability, get_observability
from repro.replication.shipper import LogShipper
from repro.replication.standby import StandbyShard
from repro.storage.codec import decode, encode
from repro.storage.disk import Disk, MemDisk

#: disk area holding the controller's durable promotion ledger
CONTROLLER_AREA = "failover.ctl"


class FailoverController:
    """Durable ledger of standby promotions, one generation per shard."""

    def __init__(self, disk: Disk | None = None, *,
                 obs: Observability | None = None):
        self.disk: Disk = disk if disk is not None else MemDisk()
        obs = obs if obs is not None else get_observability()
        self._flight = obs.flight
        metrics = obs.metrics
        self._m_failovers = metrics.counter(
            "failovers_total", "standby promotions", ("shard",)
        )
        self._m_rto = metrics.histogram(
            "failover_rto_seconds",
            "promotion decision to serving primary", ("shard",)
        )
        self._state = self._load()

    def _load(self) -> dict:
        raw = self.disk.read(CONTROLLER_AREA)
        if not raw:
            return {"v": 1, "generations": {}, "history": []}
        return decode(bytes(raw))

    def generation(self, shard: int) -> int:
        """Promotions recorded for ``shard`` (0 = original primary)."""
        return int(self._state["generations"].get(str(shard), 0))

    @property
    def history(self) -> list[dict]:
        return list(self._state["history"])

    def record_promotion(self, shard: int, *, lsn: int,
                         reason: str) -> int:
        """Durably record a promotion; returns the new generation.
        The ``replace`` is the commit point: a controller crash before
        it changes nothing, after it the promotion is authoritative."""
        generation = self.generation(shard) + 1
        self._state["generations"][str(shard)] = generation
        self._state["history"].append({
            "shard": shard, "generation": generation,
            "lsn": lsn, "reason": reason,
        })
        self.disk.replace(CONTROLLER_AREA, encode(self._state))
        self._m_failovers.labels(shard=str(shard)).inc()
        self._flight.record("failover.promote", shard=shard,
                            generation=generation, lsn=lsn, reason=reason)
        return generation

    def observe_rto(self, shard: int, seconds: float) -> None:
        """Record one promotion's recovery time (decision → serving)."""
        self._m_rto.labels(shard=str(shard)).observe(seconds)


class ReplicaSet:
    """One warm standby + shipper per shard of a repository.

    ``standby_disks`` lets a restart re-attach standbys that survived
    (their disks carry the mirrored image; the shipper resyncs any
    missing tail on the first :meth:`pump`).  A ``None`` entry — or no
    list at all — gets a fresh in-memory standby.
    """

    def __init__(self, repo, *, standby_disks: Sequence[Disk | None] | None = None,
                 controller: FailoverController | None = None,
                 obs: Observability | None = None):
        self.obs = obs if obs is not None else get_observability()
        self.controller = (controller if controller is not None
                           else FailoverController(obs=self.obs))
        self.standbys: list[StandbyShard] = []
        self.shippers: list[LogShipper] = []
        for index, shard in enumerate(repo.shards):
            disk = None
            if standby_disks is not None and index < len(standby_disks):
                disk = standby_disks[index]
            standby = StandbyShard(shard.name, disk)
            self.standbys.append(standby)
            self.shippers.append(LogShipper(
                shard.log, standby, shard=str(index), obs=self.obs,
            ))
        self.pump()  # attach-time catch-up (boot records, old history)

    def __len__(self) -> int:
        return len(self.shippers)

    def pump(self) -> bool:
        """One housekeeping pass over every shipper (checkpoint
        mirroring, resync, warm replay).  True when every standby is
        caught up."""
        caught_up = True
        for shipper in self.shippers:
            caught_up = shipper.poll() and caught_up
        return caught_up

    def lag_bytes(self) -> list[int]:
        return [shipper.lag_bytes() for shipper in self.shippers]

    def pause(self, index: int) -> None:
        """Start simulated replication lag on one shard's shipping."""
        self.shippers[index].pause()

    def resume(self, index: int) -> None:
        self.shippers[index].resume()

    def standby_disks(self) -> list[Disk]:
        return [standby.disk for standby in self.standbys]

    def fail_over(self, index: int, *, reason: str = "node.kill") -> Disk:
        """Promote shard ``index``'s standby: fence, drain, detach,
        record, release (module docstring).  Returns the promoted disk
        image, ready to boot a repository from."""
        shipper = self.shippers[index]
        standby = self.standbys[index]
        shipper.primary.fence(
            f"shard {index} generation {self.controller.generation(index)} "
            f"deposed ({reason})"
        )
        shipper.drain()
        shipper.detach()
        self.controller.record_promotion(
            index, lsn=standby.next_lsn, reason=reason,
        )
        return standby.promote()

    def detach(self) -> None:
        """Stop all shipping (system shutdown)."""
        for shipper in self.shippers:
            shipper.detach()
