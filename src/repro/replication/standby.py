"""The warm standby: a byte mirror of one shard's durable image.

A :class:`StandbyShard` owns a disk holding two things, both streamed
over by a :class:`~repro.replication.shipper.LogShipper`:

* the primary's WAL **record stream**, re-framed into the standby's
  own segments (LSNs exclude segment headers, so segment boundaries
  need not match the primary's), and
* the primary's **checkpoint blob**, mirrored verbatim — recovery
  reads only the blob, never the begin/end markers, so a mirrored blob
  plus the stream tail above its recovery LSN is a complete,
  ready-to-promote repository image.

The standby *continuously replays* the shipped tail through the same
scan/decode path restart recovery uses (:meth:`StandbyShard.refresh`):
every frame's CRC is verified and every record decoded as it arrives,
so shipping corruption is caught while the primary is still alive, and
the replay cursor gives replication lag in records/transactions as
well as bytes.  The authoritative state rebuild — redo with commit
filtering, in-doubt 2PC resolution, epoch bump — happens at promotion
by booting a normal :class:`~repro.queueing.repository.QueueRepository`
over this image; the mirrored checkpoint bounds that replay to the
tail, which is what keeps the RTO flat as history grows.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StorageError
from repro.obs import NULL_OBS, Observability
from repro.storage.codec import decode
from repro.storage.disk import Disk, MemDisk
from repro.storage.wal import WriteAheadLog

#: record kinds whose arrival marks a transaction outcome on the
#: standby's warm-replay cursor (mirror of repro.transaction.log)
_COMMIT_KIND = "cmt"

_CHECKPOINT_AREA_SUFFIX = ".ckpt"


class StandbyShard:
    """A warm backup image of one repository shard.

    ``name`` must equal the primary shard's repository name (e.g.
    ``"reqnode"`` or ``"reqnode.s1"``): the WAL area and checkpoint
    area are derived from it, and the promoted repository will look
    for exactly those areas on this disk.

    The standby's WAL deliberately runs with a *disabled* observability
    handle — its area name equals the primary's, and double-registering
    the primary's gauges/counters under the same label would corrupt
    the primary's series.  Replication has its own metrics on the
    shipper side.
    """

    def __init__(self, name: str, disk: Disk | None = None, *,
                 obs: Observability | None = None):
        self.name = name
        self.disk: Disk = disk if disk is not None else MemDisk()
        self.area = f"{name}.log"
        self.checkpoint_area = self.area + _CHECKPOINT_AREA_SUFFIX
        self._obs = obs if obs is not None else NULL_OBS
        # Opening over a non-empty disk resumes from the durable
        # prefix (a standby surviving its node's restart).
        self.wal = WriteAheadLog(self.disk, self.area, obs=NULL_OBS)
        self._applied_lsn = self.wal.oldest_lsn()
        self.applied_records = 0
        self.applied_commits = 0
        self.promoted = False

    # -- shipping sink -------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """The standby's shipping cursor: the stream offset the next
        ingested chunk must start at."""
        return self.wal.next_lsn

    def ingest(self, data: bytes, lsn: int) -> int:
        """Append shipped stream bytes starting at ``lsn`` and force
        them — the standby acknowledges nothing it could lose."""
        end = self.wal.ingest(data, lsn)
        self.wal.flush()
        return end

    def reset_to(self, base_lsn: int) -> None:
        """Full resync: durably discard the mirror and restart the
        stream at ``base_lsn`` (the primary's oldest on-disk LSN —
        always a frame boundary)."""
        self.wal.reset_to(base_lsn)
        self._applied_lsn = base_lsn

    def install_checkpoint(self, blob: bytes) -> int:
        """Mirror the primary's checkpoint blob verbatim, then reclaim
        standby segments the new checkpoint covers.  Returns the
        blob's recovery LSN.

        The ``replace`` is atomic+durable, and GC runs strictly after
        it — the same commit-point ordering the primary's checkpointer
        uses, so a standby crash between the two just leaves segments
        for the next mirror pass.
        """
        try:
            recovery_lsn = int(decode(blob).get("recovery_lsn", 0))
        except Exception as exc:  # codec error -> don't mirror garbage
            raise StorageError(
                f"unreadable checkpoint blob for standby {self.name!r}: {exc}"
            ) from exc
        self.disk.replace(self.checkpoint_area, blob)
        self.wal.gc(recovery_lsn)
        if self._applied_lsn < self.wal.oldest_lsn():
            self._applied_lsn = self.wal.oldest_lsn()
        return recovery_lsn

    # -- warm replay ---------------------------------------------------------

    @property
    def applied_lsn(self) -> int:
        return self._applied_lsn

    def refresh(self) -> int:
        """Replay newly shipped records through the recovery scan path:
        verify each frame's CRC, decode each record, and advance the
        replay cursor.  Returns the number of records applied.

        Torn-tail semantics come from the WAL scan itself: a torn live
        tail stops the replay silently (the bytes were never durable on
        the primary either), and a partially-shipped batch frame is
        dropped whole — re-shipping the full batch later replays it
        from the same cursor, so replay is idempotent on re-ship.
        """
        applied = 0
        for record in self.wal.scan(self._applied_lsn):
            body = decode(record.payload)
            applied += 1
            if body.get("k") == _COMMIT_KIND:
                self.applied_commits += 1
            self._applied_lsn = record.next_lsn
        self.applied_records += applied
        return applied

    # -- promotion -----------------------------------------------------------

    def promote(self) -> Disk:
        """Hand the image over for a primary boot.

        The standby's own WAL handle is done — the promoted repository
        opens its own log over the disk — so this object becomes inert.
        """
        self.promoted = True
        return self.disk

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StandbyShard({self.name!r}, next_lsn={self.next_lsn}, "
                f"promoted={self.promoted})")
