"""The log shipper: primary-side streaming of one shard's WAL.

Steady state is a **synchronous tee**: the shipper registers
``on_append``/``on_flush`` hooks on the primary's
:class:`~repro.storage.wal.WriteAheadLog`.  Appends are buffered as
framed byte chunks; when the primary's flush succeeds — i.e. at the
exact moment the primary starts treating those bytes as durable — the
durable prefix is delivered to the standby and forced there too.  The
standby therefore holds every byte the primary has acknowledged, which
is what makes promotion lossless, and it never holds bytes the
primary has *not* acknowledged, so it can never run ahead.  Because
delivery reads the tee buffer rather than the primary's disk, a
faulty primary disk (read faults, crash) cannot poison steady-state
shipping.

:meth:`LogShipper.poll` handles everything that is not append-shaped:
mirroring the checkpoint blob (which also drives standby-side segment
GC) and *resync* — the catch-up scan used at attach time, after a
delivery discontinuity, or after the primary's checkpointer reclaimed
segments past a lagging standby's cursor (full resync from the
primary's oldest on-disk LSN, which is always a frame boundary; the
blob's recovery LSN may sit mid-batch and is **not** a valid stream
start).

:meth:`pause`/:meth:`resume` model replication lag (the chaos
``standby.lag`` fault): flushed chunks accumulate in the tee buffer
instead of delivering.  :meth:`drain` delivers everything durable —
promotion always drains first, so lag delays the standby but never
loses acknowledged bytes.

Lock order (deadlock freedom): hooks run under the primary WAL lock
and take the shipper lock, so the shipper must never call a
primary-WAL-locking method while holding its own lock; the lock-free
``flushed_lsn``/``next_lsn`` properties are safe.  Standby calls
happen under the shipper lock, and the standby never calls back into
the primary: ``WAL → shipper → standby`` is acyclic.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import StorageError
from repro.obs import Observability, get_observability
from repro.replication.standby import StandbyShard
from repro.transaction.log import LogManager

#: resync iterations per poll before yielding to the next poll (bounds
#: the race against a continuously-flushing primary)
_RESYNC_ROUNDS = 100


class LogShipper:
    """Streams one primary shard's WAL record stream to a standby."""

    def __init__(self, primary: LogManager, standby: StandbyShard, *,
                 shard: str = "0", obs: Observability | None = None):
        self.primary = primary
        self.standby = standby
        self.shard = shard
        self._wal = primary.wal
        self._lock = threading.Lock()
        #: flushed-on-primary, not yet delivered chunks: (lsn, bytes)
        self._chunks: deque[tuple[int, bytes]] = deque()
        #: expected LSN of the next on_append callback
        self._tail = self._wal.next_lsn
        #: primary flushed LSN as of the last on_flush callback
        self._durable = self._wal.flushed_lsn
        self._paused = 0
        self._need_resync = True  # attach-time catch-up
        self._detached = False
        self._mirrored_blob: bytes | None = None

        obs = obs if obs is not None else get_observability()
        self._flight = obs.flight
        metrics = obs.metrics
        self._m_shipped = metrics.counter(
            "replication_shipped_bytes_total",
            "WAL bytes delivered to the standby", ("shard",)
        ).labels(shard=shard)
        self._m_resyncs = metrics.counter(
            "replication_resyncs_total",
            "catch-up scans (attach, discontinuity, GC overrun)", ("shard",)
        ).labels(shard=shard)
        metrics.gauge(
            "replication_lag_bytes",
            "primary flushed LSN minus standby shipped LSN", ("shard",)
        ).labels(shard=shard).set_function(self.lag_bytes)

        self._wal.on_append.append(self._on_append)
        self._wal.on_flush.append(self._on_flush)

    # -- observable state ----------------------------------------------------

    def lag_bytes(self) -> int:
        """Durable bytes the standby has not acknowledged yet."""
        return max(0, self._wal.flushed_lsn - self.standby.next_lsn)

    @property
    def caught_up(self) -> bool:
        return (not self._need_resync
                and self.standby.next_lsn >= self._wal.flushed_lsn)

    @property
    def paused(self) -> bool:
        return self._paused > 0

    # -- WAL hooks (run under the primary WAL lock) --------------------------

    def _on_append(self, lsn: int, data: bytes) -> None:
        with self._lock:
            if self._detached:
                return
            if lsn != self._tail:
                # Discontinuity: the primary reset its LSN space (log
                # truncation).  Drop the stale buffer and let poll()
                # resync from the new stream.
                self._chunks.clear()
                self._need_resync = True
            self._chunks.append((lsn, data))
            self._tail = lsn + len(data)

    def _on_flush(self, flushed_lsn: int) -> None:
        with self._lock:
            if self._detached:
                return
            self._durable = flushed_lsn
            if self._paused or self._need_resync:
                return
            self._deliver_locked()

    # -- delivery ------------------------------------------------------------

    def _deliver_locked(self) -> bool:
        """Deliver buffered chunks that are durable on the primary.
        Caller holds the shipper lock.  Returns False on a cursor
        mismatch or standby error (resync scheduled)."""
        while self._chunks:
            lsn, data = self._chunks[0]
            end = lsn + len(data)
            if end > self._durable:
                break  # not yet acknowledged by the primary
            cursor = self.standby.next_lsn
            if end <= cursor:
                self._chunks.popleft()  # already shipped (resync overlap)
                continue
            if lsn != cursor:
                self._chunks.clear()
                self._need_resync = True
                return False
            try:
                self.standby.ingest(data, lsn)
            except (StorageError, OSError, ValueError) as exc:
                self._chunks.clear()
                self._need_resync = True
                self._flight.record("replication.ship_failed",
                                    shard=self.shard,
                                    error=type(exc).__name__)
                return False
            self._chunks.popleft()
            self._m_shipped.inc(len(data))
        return True

    def pause(self) -> None:
        """Defer delivery (replication lag); nestable."""
        with self._lock:
            self._paused += 1

    def resume(self) -> None:
        with self._lock:
            if self._paused:
                self._paused -= 1
                if not self._paused and not self._need_resync:
                    self._deliver_locked()

    def drain(self) -> None:
        """Deliver every primary-acknowledged byte now, regardless of
        pause state — the first step of every promotion.  A dead
        primary disk is absorbed: the tee buffer needs no primary
        reads, and a resync against a corpse just leaves the standby
        at whatever it last acknowledged (which is the point of
        promotion)."""
        with self._lock:
            delivered = self._deliver_locked()
        if not delivered or self._need_resync:
            try:
                self._resync()
            except (StorageError, OSError) as exc:
                self._flight.record("replication.drain_partial",
                                    shard=self.shard,
                                    error=type(exc).__name__)

    def detach(self) -> None:
        """Stop shipping (the standby was promoted or abandoned)."""
        with self._lock:
            if self._detached:
                return
            self._detached = True
            self._chunks.clear()
        for hooks, hook in ((self._wal.on_append, self._on_append),
                            (self._wal.on_flush, self._on_flush)):
            try:
                hooks.remove(hook)
            except ValueError:
                pass

    # -- polling: checkpoint mirror + resync ---------------------------------

    def poll(self) -> bool:
        """One replication housekeeping pass: mirror the checkpoint
        blob, then close any shipping gap.  Returns True when the
        standby is caught up to the primary's flushed LSN.  Primary
        storage errors (it may be crashed/killed) are absorbed — the
        standby simply stops advancing, and promotion remains legal at
        whatever it last acknowledged.
        """
        if self._detached:
            return False
        try:
            self._mirror_checkpoint()
            if self._need_resync and not self._paused:
                self._resync()
        except (StorageError, OSError) as exc:
            self._flight.record("replication.poll_failed", shard=self.shard,
                                error=type(exc).__name__)
            return False
        self.standby.refresh()
        return self.caught_up

    def _mirror_checkpoint(self) -> None:
        blob = self.primary.disk.read(self.primary.checkpoint_area)
        if not blob or blob == self._mirrored_blob:
            return
        self.standby.install_checkpoint(bytes(blob))
        self._mirrored_blob = bytes(blob)
        self._flight.record("replication.checkpoint_mirrored",
                            shard=self.shard)

    def _resync(self) -> None:
        """Catch the standby up by reading the primary's durable stream
        directly.  Never holds the shipper lock across a primary WAL
        call (lock order, module docstring)."""
        self._m_resyncs.inc()
        for _round in range(_RESYNC_ROUNDS):
            cursor = self.standby.next_lsn
            flushed = self._wal.flushed_lsn
            oldest = self._wal.oldest_lsn()
            if cursor < oldest or cursor > flushed:
                # The primary GC'd past us (or reset below us): full
                # resync from its oldest frame boundary.  The mirrored
                # blob makes the truncated prefix recoverable.
                self._mirror_checkpoint()
                self.standby.reset_to(oldest)
                self._flight.record("replication.resync", shard=self.shard,
                                    full=True, base=oldest)
                cursor = oldest
            data = self._wal.read_stream(cursor, flushed)
            with self._lock:
                if self.standby.next_lsn != cursor:
                    continue  # a concurrent delivery moved the cursor
                if data:
                    self.standby.ingest(data, cursor)
                    self._m_shipped.inc(len(data))
                # Anything flushed while we scanned is in the tee
                # buffer; deliver it and check whether we are level.
                self._durable = max(self._durable, flushed)
                if not self._deliver_locked():
                    continue
                if self.standby.next_lsn >= self._wal.flushed_lsn:
                    self._need_resync = False
                    return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogShipper(shard={self.shard}, lag={self.lag_bytes()}, "
                f"paused={self.paused})")
