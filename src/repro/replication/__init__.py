"""Per-shard primary/backup replication by WAL log shipping.

The paper's Section 10 observes that queues are "a good candidate for
being stored as a replicated database".  Two replication shapes exist
in this codebase:

* :class:`repro.queueing.replicated.ReplicatedQueue` — strong
  synchronization *per queue*: every write runs as a 2PC branch on
  every replica (the X2 cost of the paper's replicated-database
  aside).  Reads can be served anywhere immediately; writes pay two
  flushes per replica per transaction.
* this package — primary/backup *per shard*: the primary executes
  transactions normally and ships its write-ahead-log byte stream to a
  warm :class:`StandbyShard`; on primary death a
  :class:`FailoverController` promotes the standby in bounded time
  (the RTO measured by ``BENCH_failover.json``) and *fences* the old
  primary so a zombie's late writes are rejected.  Steady-state cost
  is one extra (standby) flush per primary flush — not per
  transaction — and no extra 2PC.

The shipping unit is the segmented WAL's record stream (PR 5): LSNs
are dense byte offsets excluding segment headers, so the standby
mirrors the stream byte-for-byte into its own segments and the
promoted repository recovers from it exactly as it would from the
primary's own disk.  The checkpoint blob is mirrored alongside, which
bounds promotion replay to the tail above the shipped checkpoint.
"""

from repro.replication.failover import FailoverController, ReplicaSet
from repro.replication.shipper import LogShipper
from repro.replication.standby import StandbyShard

__all__ = [
    "FailoverController",
    "LogShipper",
    "ReplicaSet",
    "StandbyShard",
]
