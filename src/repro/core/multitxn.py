"""Multi-transaction requests — Section 6, Figure 6.

"There is a sequence of server processes, which executes the sequence
of transactions for the request.  Each server registers with a
different pair of queues for req-q and reply-q ...  The clerk and
server algorithms are unchanged from Figure 5."

A :class:`MultiTransactionPipeline` materializes Figure 6: stage *i*
dequeues from queue *i-1* (queue 0 is the system's request queue),
runs its transaction, and enqueues the request-for-the-next-transaction
into queue *i* — all in one transaction.  The final stage enqueues the
client's reply instead.  Because each hop is transactional, "the
sequence of transactions that processes the request cannot be broken by
a failure", and the exactly-once argument is exactly the
single-transaction one, per stage.

State across stages travels in the request's *scratch pad*
(Section 9's IMS/DC feature): "a server must store it either in a
database or in the next request".

Request serializability knobs (Section 6's discussion):

* ``inherit_locks=True`` — "each transaction's database locks are
  inherited by the next transaction in the sequence": committed stages
  park their locks under a per-request chain owner; the next stage
  adopts them; the final stage releases everything.  (Volatile, like
  real lock tables: a node crash drops the chain's locks — the paper
  presents this as a coaxed-database-system technique, not a durable
  one.)
* ``lock_table`` — an :class:`~repro.core.applocks.AppLockTable` for
  the persistent application-lock variant; stage handlers acquire
  through it and the pipeline releases in the final stage.

Stage handlers additionally record their completion in a progress
table, which :mod:`repro.core.saga` uses to compensate cancelled
requests (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.applocks import AppLockTable
from repro.core.request import Reply, Request
from repro.core.server import Server
from repro.core.system import TPSystem
from repro.errors import QueueEmpty
from repro.transaction.manager import Transaction

#: stage handler: (txn, request, stage context) -> body for the next
#: stage (intermediate stages) or the reply body (final stage).
StageHandler = Callable[[Transaction, Request, "StageContext"], Any]


@dataclass
class StageContext:
    """What a stage handler may touch besides the transaction."""

    pipeline: "MultiTransactionPipeline"
    stage_index: int
    rid: str
    scratch: dict[str, Any]

    def app_lock(self, txn: Transaction, resource: str) -> None:
        """Acquire a persistent application lock for this request."""
        if self.pipeline.lock_table is None:
            raise ValueError("pipeline has no application lock table")
        self.pipeline.lock_table.acquire(txn, self.rid, resource)

    @property
    def is_final(self) -> bool:
        return self.stage_index == len(self.pipeline.stages) - 1


@dataclass
class Stage:
    name: str
    handler: StageHandler


class MultiTransactionPipeline:
    """Figure 6's chain of servers and queues."""

    def __init__(
        self,
        system: TPSystem,
        name: str,
        stages: list[Stage],
        *,
        inherit_locks: bool = False,
        lock_table: AppLockTable | None = None,
        progress_table_name: str | None = None,
    ):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.system = system
        self.name = name
        self.stages = list(stages)
        self.inherit_locks = inherit_locks
        self.lock_table = lock_table
        #: per-rid stage completion, consumed by sagas (Section 7)
        self.progress = system.table(progress_table_name or f"{name}.progress")
        repo = system.request_repo
        #: intermediate queue names: stage i feeds queue_names[i]
        self.queue_names = [
            f"{name}.q{i}" for i in range(1, len(stages))
        ]
        for qname in self.queue_names:
            if qname not in repo.queues:
                repo.create_queue(
                    qname,
                    error_queue=system.error_queue,
                    max_aborts=repo.get_queue(system.request_queue).config.max_aborts,
                    index_headers=("rid",),
                )

    # ------------------------------------------------------------------
    # Queue topology
    # ------------------------------------------------------------------

    def input_queue(self, stage_index: int) -> str:
        if stage_index == 0:
            return self.system.request_queue
        return self.queue_names[stage_index - 1]

    def output_queue(self, stage_index: int) -> str | None:
        """None for the final stage (its output is the client reply)."""
        if stage_index == len(self.stages) - 1:
            return None
        return self.queue_names[stage_index]

    def _chain_owner(self, rid: str) -> tuple[str, str, str]:
        return ("chain", self.name, rid)

    # ------------------------------------------------------------------
    # Stage servers
    # ------------------------------------------------------------------

    def stage_server(self, stage_index: int, server_name: str | None = None) -> Server:
        """Build the Figure 5 server for one stage.

        The returned server dequeues from the stage's input queue; its
        handler runs the stage handler, stores updated scratch in the
        next request, records progress, and routes output."""
        if not 0 <= stage_index < len(self.stages):
            raise IndexError(f"no stage {stage_index} in pipeline {self.name!r}")
        stage = self.stages[stage_index]
        name = server_name or f"{self.name}.s{stage_index}"
        pipeline = self

        def handler(txn: Transaction, request: Request) -> Any:
            ctx = StageContext(
                pipeline=pipeline,
                stage_index=stage_index,
                rid=request.rid,
                scratch=dict(request.scratch),
            )
            if pipeline.inherit_locks and stage_index > 0:
                # Adopt the locks the previous stage parked for us.
                pipeline.system.request_repo.locks.transfer(
                    pipeline._chain_owner(request.rid), txn.id
                )
            result = stage.handler(txn, request, ctx)
            pipeline._record_progress(txn, request.rid, stage_index)
            if ctx.is_final:
                if pipeline.lock_table is not None:
                    # "releasing all of these 'application locks' just
                    # before the final transaction ... commits"
                    pipeline.lock_table.release_all(txn, request.rid)
                return result
            # Intermediate stage: forward a request for the next
            # transaction; this *is* the stage's "reply" in Figure 6.
            next_request = Request(
                rid=request.rid,
                body=result,
                client_id=request.client_id,
                reply_to=request.reply_to,
                scratch=ctx.scratch,
            )
            pipeline._forward(txn, stage_index, next_request)
            if pipeline.inherit_locks:
                # Park this transaction's locks for the next stage.
                txn.on_commit(
                    lambda: pipeline.system.request_repo.locks.transfer(
                        txn.id, pipeline._chain_owner(request.rid)
                    )
                )
            # The Server wrapper must NOT also enqueue a client reply.
            return _FORWARDED

        server = _StageServer(
            name,
            pipeline.system.request_qm,
            self.input_queue(stage_index),
            handler,
            reply_qm=pipeline.system.reply_qm,
            coordinator=pipeline.system.coordinator,
            trace=pipeline.system.trace,
            injector=pipeline.system.injector,
            final=stage_index == len(self.stages) - 1,
        )
        return server

    def servers(self) -> list[Server]:
        """One server per stage."""
        return [self.stage_server(i) for i in range(len(self.stages))]

    def _forward(self, txn: Transaction, stage_index: int, request: Request) -> None:
        qname = self.output_queue(stage_index)
        assert qname is not None
        queue = self.system.request_repo.get_queue(qname)
        queue.enqueue(
            txn,
            request.to_body(),
            headers={"rid": request.rid, "reply_to": request.reply_to},
        )

    def _record_progress(self, txn: Transaction, rid: str, stage_index: int) -> None:
        key = f"done/{rid}"
        done = self.progress.get(txn, key, default=[])
        if stage_index not in done:
            self.progress.put(txn, key, list(done) + [stage_index])

    def completed_stages(self, txn: Transaction, rid: str) -> list[int]:
        return list(self.progress.get(txn, f"done/{rid}", default=[]))

    # ------------------------------------------------------------------
    # Draining (tests / benchmarks)
    # ------------------------------------------------------------------

    def drain(self, max_rounds: int = 10_000) -> int:
        """Run stage servers round-robin until every pipeline queue is
        empty.  Returns the number of stage transactions executed."""
        servers = self.servers()
        executed = 0
        for _ in range(max_rounds):
            progressed = False
            for server in servers:
                try:
                    if server.process_one():
                        executed += 1
                        progressed = True
                except QueueEmpty:  # pragma: no cover - defensive
                    continue
            if not progressed:
                return executed
        raise RuntimeError(f"pipeline {self.name!r} did not drain")


#: sentinel returned by intermediate stage handlers: "already forwarded,
#: do not enqueue a client reply"
_FORWARDED = object()


class _StageServer(Server):
    """Server subclass for pipeline stages: intermediate results are
    forwarded (no client reply) and traced as *stage* executions; only
    the final stage's commit counts as the request's execution."""

    def __init__(self, *args: Any, final: bool, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.final = final

    def _enqueue_reply(
        self, txn: Transaction, request: Request, reply: Reply, span=None
    ) -> None:
        if reply.body is _FORWARDED:
            return
        super()._enqueue_reply(txn, request, reply, *(() if span is None else (span,)))

    def _trace_commit(self, rid: str, reply: Reply) -> None:
        if reply.body is _FORWARDED:
            if self.trace is not None:
                self.trace.record("request.stage_executed", rid, server=self.name)
            return
        super()._trace_commit(rid, reply)
