"""The paper's contribution: fault-tolerant request/reply processing.

* :mod:`repro.core.request` — requests, replies, rids.
* :mod:`repro.core.states` — the client state machines of Figure 1
  (non-interactive) and Figure 7 (interactive).
* :mod:`repro.core.clerk` — the clerk runtime library of Figure 5:
  Connect / Disconnect / Send / Receive / Rereceive translated to
  queue operations, plus Transceive and one-way Send (Section 5).
* :mod:`repro.core.client` — the client program of Figure 2, including
  connect-time resynchronization, run as a restartable fault-tolerant
  sequential program.
* :mod:`repro.core.server` — the transactional server loop of Figure 5,
  optionally spanning two repositories via two-phase commit.
* :mod:`repro.core.system` — the System Model wiring of Figure 4.
* :mod:`repro.core.guarantees` — trace checkers for the three
  guarantees of Section 3.
* :mod:`repro.core.devices` — testable output devices (Section 3).
* :mod:`repro.core.multitxn` — Section 6 multi-transaction requests.
* :mod:`repro.core.workflow` — Section 6 fork/join concurrency.
* :mod:`repro.core.applocks` — Section 6 application-level locks.
* :mod:`repro.core.cancel` / :mod:`repro.core.saga` — Section 7.
* :mod:`repro.core.interactive` — Section 8 interactive requests.
"""

from repro.core.request import Request, Reply, make_rid, rid_sequence
from repro.core.states import ClientState, ClientStateMachine
from repro.core.clerk import Clerk
from repro.core.client import Client, ReplyProcessor
from repro.core.server import Server
from repro.core.system import TPSystem
from repro.core.guarantees import GuaranteeChecker, Violation

__all__ = [
    "Request",
    "Reply",
    "make_rid",
    "rid_sequence",
    "ClientState",
    "ClientStateMachine",
    "Clerk",
    "Client",
    "ReplyProcessor",
    "Server",
    "TPSystem",
    "GuaranteeChecker",
    "Violation",
]
