"""Streaming requests and replies — Section 11's future-work item.

"One could extend the Client Model to support streaming of requests
and replies, as in the Mercury system [Liskov et al 88]."

A :class:`StreamingClient` keeps up to ``window`` requests in flight
instead of the base model's one-at-a-time.  The protocol change is the
one Section 5 sketches for concurrent clients: instead of a single
(send-tag, receive-tag) pair, each in-flight *slot* is its own
registrant (``"<client>~<slot>"``), so Connect recovers a whole array
of last-operation tags and the resynchronization of Figure 2 runs per
slot.  Requests are distributed over slots round-robin; each slot stays
one-at-a-time internally, so every guarantee argument of Section 5
applies slot-wise, and the union gives exactly-once for the stream.

Replies may complete out of order across slots (that is the point of
streaming); :meth:`StreamingClient.run` reassembles them by rid.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.clerk import Clerk
from repro.core.request import Reply, Request, make_rid, rid_sequence
from repro.core.system import TPSystem
from repro.errors import QueueEmpty
from repro.sim.trace import TraceRecorder


def slot_registrant(client_id: str, slot: int) -> str:
    return f"{client_id}~{slot}"


class StreamingClient:
    """A windowed, restartable request stream.

    Work item *i* (0-based) always travels in slot ``i % window`` with
    rid ``<client>~<slot>#<k>`` where ``k = i // window + 1`` — a pure
    function of the item index, so a recovered incarnation re-derives
    every slot's position from the slot registrations alone.
    """

    def __init__(
        self,
        system: TPSystem,
        client_id: str,
        work: Sequence[Any],
        window: int = 4,
        trace: TraceRecorder | None = None,
        receive_timeout: float | None = 30.0,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.system = system
        self.client_id = client_id
        self.work = list(work)
        self.window = min(window, max(1, len(self.work)))
        self.trace = trace if trace is not None else system.trace
        self.receive_timeout = receive_timeout
        self.clerks: list[Clerk] = []
        self.replies: dict[int, Reply] = {}  # work index -> reply

    # -- index arithmetic ---------------------------------------------------

    def _slot_of(self, index: int) -> int:
        return index % self.window

    def _seq_of(self, index: int) -> int:
        return index // self.window + 1

    def _index_of(self, slot: int, seq: int) -> int:
        return (seq - 1) * self.window + slot

    def _rid(self, index: int) -> str:
        return make_rid(slot_registrant(self.client_id, self._slot_of(index)),
                        self._seq_of(index))

    # -- protocol -------------------------------------------------------------

    def _connect_slots(self) -> list[int]:
        """Connect every slot; returns per-slot next work index, derived
        from the recovered registration tags (the Section 5 tag array)."""
        self.clerks = []
        next_index: list[int] = []
        for slot in range(self.window):
            clerk = Clerk(
                slot_registrant(self.client_id, slot),
                self.system.request_qm,
                self.system.request_queue,
                self.system.reply_qm,
                self.system.ensure_reply_queue(slot_registrant(self.client_id, slot)),
                trace=self.trace,
                injector=self.system.injector,
            )
            s_rid, r_rid, _ckpt = clerk.connect()
            self.clerks.append(clerk)
            if s_rid is None:
                next_index.append(slot)  # first item of this slot
                continue
            self.trace.record("request.sent", s_rid,
                              client=slot_registrant(self.client_id, slot),
                              resync=True)
            sent_index = self._index_of(slot, rid_sequence(s_rid))
            if s_rid != r_rid:
                # In-flight: receive its reply during resync.
                reply = clerk.receive(ckpt=None, timeout=self.receive_timeout)
                self._accept(sent_index, reply)
            else:
                # Reply received before the crash; re-read it.
                reply = clerk.rereceive()
                self._accept(sent_index, reply)
            next_index.append(sent_index + self.window)
        return next_index

    def _accept(self, index: int, reply: Reply) -> None:
        self.replies[index] = reply
        self.trace.record("reply.processed", reply.rid, stream=self.client_id)

    def run(self) -> list[Reply]:
        """Stream the whole work list; returns replies in work order."""
        next_index = self._connect_slots()
        outstanding: dict[int, int] = {}  # slot -> in-flight work index
        # Prime the window.
        for slot in range(self.window):
            index = next_index[slot]
            if index < len(self.work) and index not in self.replies:
                self._send(slot, index)
                outstanding[slot] = index
        # Drain/refill until done.
        while outstanding:
            progressed = False
            for slot in list(outstanding):
                index = outstanding[slot]
                try:
                    reply = self.clerks[slot].receive(
                        ckpt=None, timeout=self.receive_timeout
                    )
                except QueueEmpty:
                    continue
                self._accept(index, reply)
                progressed = True
                following = index + self.window
                if following < len(self.work):
                    self._send(slot, following)
                    outstanding[slot] = following
                else:
                    del outstanding[slot]
            if not progressed and outstanding:
                raise QueueEmpty(
                    f"stream {self.client_id!r}: no replies within timeout; "
                    f"outstanding={sorted(outstanding.values())}"
                )
        for clerk in self.clerks:
            clerk.disconnect()
        return [self.replies[i] for i in sorted(self.replies) if i < len(self.work)]

    def _send(self, slot: int, index: int) -> None:
        rid = self._rid(index)
        request = Request(
            rid=rid,
            body=self.work[index],
            client_id=slot_registrant(self.client_id, slot),
            reply_to=self.clerks[slot].reply_queue,
        )
        self.clerks[slot].send(request, rid)

    @property
    def in_order(self) -> bool:
        """Did replies arrive in work order?  (Usually False once the
        window exceeds 1 — that is streaming working as intended.)"""
        seqs = [e.seq for e in self.trace.events("reply.processed")
                if e.detail.get("stream") == self.client_id]
        rids = [e.rid for e in self.trace.events("reply.processed")
                if e.detail.get("stream") == self.client_id]
        expected = sorted(rids, key=lambda r: (rid_sequence(r), r))
        return rids == expected and seqs == sorted(seqs)
