"""Trace checkers for the three guarantees of Section 3.

Every test and benchmark that injects failures closes with these
checks over the recorded :class:`~repro.sim.trace.TraceRecorder`:

* **Request-Reply Matching** — each reply the client processed carries
  the rid of a request that client actually sent, and per client the
  replies were received in send order (the one-at-a-time protocol).
* **Exactly-Once Request-Processing** — every sent request has exactly
  one committed ``request.executed`` event (zero if it was cancelled);
  aborted attempts (``request.attempt_aborted``) are unbounded in
  number but never count as processing.
* **At-Least-Once Reply-Processing** — every executed request's reply
  was processed (``reply.processed``) one or more times.

The checkers are *completion* checks: run them when the system has
quiesced (clients finished their work lists, queues drained).  Use
``require_completion=False`` for mid-flight snapshots, which then only
reports violations that can never heal (duplicates, mismatches).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class Violation:
    guarantee: str
    rid: object
    message: str

    def __str__(self) -> str:
        return f"[{self.guarantee}] rid={self.rid}: {self.message}"


class GuaranteeChecker:
    """Evaluates the Section 3 guarantees over a trace."""

    def __init__(self, trace: TraceRecorder):
        self.trace = trace

    # ------------------------------------------------------------------
    # Exactly-Once Request-Processing
    # ------------------------------------------------------------------

    def exactly_once(self, require_completion: bool = True) -> list[Violation]:
        violations: list[Violation] = []
        sent = set(self.trace.rids("request.sent"))
        cancelled = set(self.trace.rids("request.cancelled"))
        executed_counts: dict[object, int] = defaultdict(int)
        for rid in self.trace.rids("request.executed"):
            executed_counts[rid] += 1
        # A durable reply is witness of execution even when the crash hit
        # between the server's commit and its trace hook: the reply is
        # enqueued atomically with the execution, so its existence (or
        # its receipt by the client) proves the request was processed.
        executed_evidence = (
            set(executed_counts)
            | set(self.trace.rids("reply.enqueued"))
            | set(self.trace.rids("reply.received"))
        )
        for rid, count in executed_counts.items():
            if count > 1:
                violations.append(
                    Violation(
                        "exactly-once",
                        rid,
                        f"request executed {count} times (must be exactly 1)",
                    )
                )
            if rid in cancelled:
                violations.append(
                    Violation(
                        "exactly-once",
                        rid,
                        "request was both cancelled and executed",
                    )
                )
        if require_completion:
            for rid in sorted(sent - executed_evidence - cancelled, key=str):
                violations.append(
                    Violation(
                        "exactly-once",
                        rid,
                        "request was sent but never executed nor cancelled",
                    )
                )
        return violations

    def exactly_once_stages(self) -> list[Violation]:
        """Section 6: for a multi-transaction request, every *stage*
        transaction must also commit exactly once per request."""
        violations: list[Violation] = []
        counts: dict[tuple[object, object], int] = defaultdict(int)
        for event in self.trace.events("request.stage_executed"):
            counts[(event.rid, event.detail.get("server"))] += 1
        for (rid, server), count in sorted(counts.items(), key=str):
            if count > 1:
                violations.append(
                    Violation(
                        "exactly-once-stage",
                        rid,
                        f"stage {server!r} executed {count} times for this request",
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # At-Least-Once Reply-Processing
    # ------------------------------------------------------------------

    def at_least_once_reply(self, require_completion: bool = True) -> list[Violation]:
        if not require_completion:
            return []  # "at least once" can always still heal mid-flight
        violations: list[Violation] = []
        executed = (
            set(self.trace.rids("request.executed"))
            | set(self.trace.rids("reply.enqueued"))
            | set(self.trace.rids("reply.received"))
        )
        processed = set(self.trace.rids("reply.processed"))
        for rid in sorted(executed - processed, key=str):
            violations.append(
                Violation(
                    "at-least-once-reply",
                    rid,
                    "request executed but its reply was never processed",
                )
            )
        return violations

    # ------------------------------------------------------------------
    # Failover safety (repro.replication)
    # ------------------------------------------------------------------

    def promotion_safety(self, require_completion: bool = True) -> list[Violation]:
        """No request is lost or double-processed across standby
        promotions.

        For every rid sent *before* the last ``node.failover`` trace
        event: it must not have more than one committed execution (a
        zombie primary or a stale standby image re-executing work), and
        — when the workload claims completion — it must still have
        execution evidence or a cancellation (a promotion must not lose
        an acknowledged request).  This is the exactly-once guarantee
        restricted to the promotion-crossing population and labeled
        separately, so a failover-specific regression is distinguishable
        from a generic one.  Traces without promotions pass vacuously.
        """
        promotions = list(self.trace.events("node.failover"))
        if not promotions:
            return []
        last_promotion_seq = max(e.seq for e in promotions)
        crossing = {
            e.rid for e in self.trace.events("request.sent")
            if e.seq < last_promotion_seq
        }
        cancelled = set(self.trace.rids("request.cancelled"))
        executed_counts: dict[object, int] = defaultdict(int)
        for rid in self.trace.rids("request.executed"):
            executed_counts[rid] += 1
        evidence = (
            set(executed_counts)
            | set(self.trace.rids("reply.enqueued"))
            | set(self.trace.rids("reply.received"))
        )
        violations: list[Violation] = []
        for rid in sorted(crossing, key=str):
            count = executed_counts.get(rid, 0)
            if count > 1:
                violations.append(
                    Violation(
                        "failover-safety",
                        rid,
                        f"request crossed a promotion and was executed "
                        f"{count} times (must be exactly 1)",
                    )
                )
            if require_completion and rid not in evidence and rid not in cancelled:
                violations.append(
                    Violation(
                        "failover-safety",
                        rid,
                        "request sent before a promotion was lost "
                        "(never executed nor cancelled)",
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # Request-Reply Matching
    # ------------------------------------------------------------------

    def request_reply_matching(self) -> list[Violation]:
        violations: list[Violation] = []
        sent_by_client: dict[object, list[object]] = defaultdict(list)
        for event in self.trace.events("request.sent"):
            client = event.detail.get("client")
            if event.rid not in sent_by_client[client]:
                sent_by_client[client].append(event.rid)
        received_by_client: dict[object, list[object]] = defaultdict(list)
        for event in self.trace.events("reply.received"):
            received_by_client[event.detail.get("client")].append(event.rid)

        all_sent = {rid for rids in sent_by_client.values() for rid in rids}
        for client, received in received_by_client.items():
            for rid in received:
                if rid not in all_sent:
                    violations.append(
                        Violation(
                            "request-reply-matching",
                            rid,
                            f"client {client!r} received a reply for a request "
                            "it never sent",
                        )
                    )
            # One-at-a-time ordering: the sequence of *distinct* replies a
            # client received must be a prefix-respecting subsequence of
            # its send order (duplicate receives of the same rid are
            # legal — that is the at-least-once side).
            distinct: list[object] = []
            for rid in received:
                if not distinct or distinct[-1] != rid:
                    distinct.append(rid)
            sends = sent_by_client.get(client, [])
            positions = [sends.index(rid) for rid in distinct if rid in sends]
            deduped = [p for i, p in enumerate(positions) if i == 0 or p != positions[i - 1]]
            if deduped != sorted(deduped):
                violations.append(
                    Violation(
                        "request-reply-matching",
                        None,
                        f"client {client!r} received replies out of send order: "
                        f"{distinct}",
                    )
                )
        return violations

    # ------------------------------------------------------------------
    # Aggregate
    # ------------------------------------------------------------------

    def check_all(self, require_completion: bool = True) -> list[Violation]:
        return (
            self.exactly_once(require_completion)
            + self.exactly_once_stages()
            + self.at_least_once_reply(require_completion)
            + self.promotion_safety(require_completion)
            + self.request_reply_matching()
        )

    def assert_ok(self, require_completion: bool = True) -> None:
        """Raise AssertionError listing every violation."""
        violations = self.check_all(require_completion)
        if violations:
            summary = "\n".join(str(v) for v in violations)
            raise AssertionError(
                f"{len(violations)} guarantee violation(s):\n{summary}"
            )
