"""Interactive requests — Section 8.

Two implementations, as the paper describes:

**Pseudo-conversational transactions** (Section 8.2, after IMS/DC):
the interactive request maps onto a *serial multi-transaction request*.
"Each intermediate output is a reply, and each intermediate input is a
request for the next transaction in the sequence."  Client and server
use the unchanged Figure 5 machinery; conversation state rides the
scratch pad, echoed back by the client with each intermediate input
(IMS's Get-Unique returns "both the element and the scratch pad").
Every intermediate hop inherits Request-Reply Matching, Exactly-Once,
and At-Least-Once from the base protocol — but cancellation after the
first output and request-level serializability are lost (the Section
8.2 weaknesses; benchmark F7 demonstrates both).

**Single-transaction with logged replay** (Section 8.3): the request
executes as ONE transaction that solicits intermediate inputs over
ordinary (non-transactional) messages.  The client logs all
intermediate I/O labelled with the request; when the transaction aborts
and the server re-runs it, "as long as the client receives intermediate
output that is identical to the request's previous incarnation, it can
re-use the intermediate input that it logged"; on divergence the log is
truncated and input is solicited afresh.  This variant keeps request
serializability and allows cancellation until the last input is sent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.clerk import Clerk
from repro.core.request import Reply, Request, make_rid
from repro.core.states import ClientOp, ClientStateMachine
from repro.errors import ProtocolViolation
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder
from repro.transaction.manager import Transaction

KIND_INTERMEDIATE = "intermediate"
KIND_FINAL = "final"


# ---------------------------------------------------------------------------
# Pseudo-conversational (Section 8.2)
# ---------------------------------------------------------------------------

#: step(txn, phase, input_value, scratch) -> (output, done)
#: ``scratch`` is mutable: updates are carried to the next phase.
StepFn = Callable[[Transaction, int, Any, dict[str, Any]], tuple[Any, bool]]


def conversational_handler(step: StepFn) -> Callable[[Transaction, Request], Any]:
    """Wrap a per-phase step function as a Figure 5 server handler.

    The request body is ``{"phase": k, "input": v, "scratch": {...}}``;
    the reply body carries the output, the phase, and the scratch pad
    for the client to echo back (IMS/DC scratch-pad convention)."""

    def handler(txn: Transaction, request: Request) -> Any:
        body = request.body
        phase = body["phase"]
        scratch = dict(body.get("scratch", {}))
        output, done = step(txn, phase, body["input"], scratch)
        return {
            "kind": KIND_FINAL if done else KIND_INTERMEDIATE,
            "phase": phase,
            "output": output,
            "scratch": scratch,
        }

    return handler


class PseudoConversationalClient:
    """Client-side driver for a pseudo-conversational request.

    ``inputs[0]`` is the initial input (phase 0); ``inputs[k]`` answers
    the k-th intermediate output.  Each phase is one Send/Receive pair
    with its own rid, so the Figure 2 resynchronization applies hop by
    hop; the phase number in the last reply tells a recovered client
    where the conversation stands ("each time the client receives an
    intermediate output, it knows that its previous input ... was
    reliably captured, and will not need to be re-sent").
    """

    def __init__(
        self,
        client_id: str,
        clerk: Clerk,
        inputs: list[Any],
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
        receive_timeout: float | None = 30.0,
    ):
        if not inputs:
            raise ValueError("need at least the initial input")
        self.client_id = client_id
        self.clerk = clerk
        self.inputs = list(inputs)
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.receive_timeout = receive_timeout
        self.machine = ClientStateMachine(interactive=True)
        self.outputs: list[Any] = []
        self.final_reply: Reply | None = None
        self._last_reply_body: dict[str, Any] = {}

    def run(self) -> Reply:
        """Drive the conversation to its final reply, resynchronizing
        first if this incarnation follows a crash."""
        phase = self._resynchronize()
        while self.final_reply is None:
            if phase >= len(self.inputs):
                raise ProtocolViolation(
                    f"conversation still open after {len(self.inputs)} inputs"
                )
            self._send_phase(phase)
            reply = self._receive_phase()
            phase = reply.body["phase"] + 1
        return self.final_reply

    # -- protocol steps ---------------------------------------------------

    def _rid(self, phase: int) -> str:
        return make_rid(self.client_id, phase + 1)

    def _send_phase(self, phase: int, scratch: dict[str, Any] | None = None) -> None:
        op = ClientOp.SEND if phase == 0 else ClientOp.SEND_INTERMEDIATE
        if self.machine.state.value in ("connected", "reply_recvd") and phase > 0:
            # A recovered client re-entering mid-conversation sends its
            # next intermediate input from the resumed state.
            op = ClientOp.SEND
        self.machine.apply(op)
        body = {
            "phase": phase,
            "input": self.inputs[phase],
            "scratch": scratch if scratch is not None else self._last_scratch(),
        }
        request = Request(
            rid=self._rid(phase),
            body=body,
            client_id=self.client_id,
            reply_to=self.clerk.reply_queue,
        )
        self.clerk.send(request, request.rid)
        self.injector.reach("pseudo.after_send")

    def _receive_phase(self) -> Reply:
        reply = self.clerk.receive(ckpt=None, timeout=self.receive_timeout)
        self._note_reply(reply)
        self.injector.reach("pseudo.after_receive")
        return reply

    def _note_reply(self, reply: Reply) -> None:
        if reply.body["kind"] == KIND_FINAL:
            self.machine.apply(ClientOp.RECEIVE)
            self.final_reply = reply
        else:
            self.machine.apply(ClientOp.RECV_INTERMEDIATE)
        self._last_reply_body = dict(reply.body)
        self.outputs.append(reply.body["output"])

    def _last_scratch(self) -> dict[str, Any]:
        if not self.outputs:
            return {}
        return dict(self._last_reply_body.get("scratch", {}))

    def _resynchronize(self) -> int:
        """Connect and work out the next phase to send."""
        self.machine.apply(ClientOp.CONNECT)
        s_rid, r_rid, _ckpt = self.clerk.connect()
        self.injector.reach("pseudo.after_connect")
        if s_rid is None:
            self._last_reply_body = {}
            return 0
        if self.trace is not None:
            # The registration proves this phase's input was durably
            # sent even if the crash hit before the trace record.
            self.trace.record("request.sent", s_rid, client=self.client_id, resync=True)
        if s_rid != r_rid:
            # An input is in flight; receive its output (possibly again).
            self.machine.apply(ClientOp.RECEIVE)
            reply = self.clerk.receive(ckpt=None, timeout=self.receive_timeout)
            self._last_reply_body = dict(reply.body)
            if reply.body["kind"] == KIND_FINAL:
                self.final_reply = reply
            self.outputs.append(reply.body["output"])
            return reply.body["phase"] + 1
        # Reply already received before the crash: re-read it to find the
        # conversation position (displays are idempotent, Section 3).
        reply = self.clerk.rereceive()
        self.machine.apply(ClientOp.RERECEIVE)
        self._last_reply_body = dict(reply.body)
        if reply.body["kind"] == KIND_FINAL:
            self.final_reply = reply
        self.outputs.append(reply.body["output"])
        return reply.body["phase"] + 1


# ---------------------------------------------------------------------------
# Single-transaction with logged replay (Section 8.3)
# ---------------------------------------------------------------------------


@dataclass
class IntermediateIOLog:
    """Client-side durable log of intermediate I/O for one request.

    "The client logs all intermediate I/O, labeling each log entry with
    the eid of the request."  The object survives client and server
    crashes (it models front-end stable storage).
    """

    rid: str
    entries: list[tuple[Any, Any]] = field(default_factory=list)  # (output, input)
    truncations: int = 0
    fresh_solicitations: int = 0
    replays: int = 0


class LoggedConversation:
    """Server↔client channel for one single-transaction interactive
    request, with replay from the client's I/O log.

    The server-side handler calls :meth:`ask` for each intermediate
    output; on a re-run after an abort, matching outputs are answered
    from the log without bothering the user."""

    def __init__(
        self,
        log: IntermediateIOLog,
        input_source: Callable[[Any], Any],
        injector: FaultInjector | None = None,
    ):
        self.log = log
        self.input_source = input_source
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._cursor = 0

    def begin_incarnation(self) -> None:
        """The server (re)starts the transaction: replay from the top."""
        self._cursor = 0

    def ask(self, output: Any) -> Any:
        """Deliver intermediate ``output``; obtain intermediate input.

        Replays logged input while outputs match the previous
        incarnation; on the first divergence, discards the remaining
        log and solicits fresh input ("it must discard the remaining
        logged intermediate input and must calculate or solicit
        intermediate input from scratch")."""
        self.injector.reach("interactive.ask")
        if self._cursor < len(self.log.entries):
            logged_output, logged_input = self.log.entries[self._cursor]
            if logged_output == output:
                self._cursor += 1
                self.log.replays += 1
                return logged_input
            # Divergent incarnation: everything after this point is void.
            del self.log.entries[self._cursor :]
            self.log.truncations += 1
        value = self.input_source(output)
        self.log.fresh_solicitations += 1
        self.log.entries.append((output, value))
        self._cursor = len(self.log.entries)
        self.injector.reach("interactive.answered")
        return value


def interactive_handler(
    conversations: dict[str, LoggedConversation],
    body_fn: Callable[[Transaction, Request, LoggedConversation], Any],
) -> Callable[[Transaction, Request], Any]:
    """Build a Figure 5 handler for single-transaction interactive
    requests: looks up the rid's conversation, resets its replay
    cursor (each attempt is a fresh incarnation), and runs ``body_fn``
    which may call ``conversation.ask`` any number of times."""

    def handler(txn: Transaction, request: Request) -> Any:
        conversation = conversations[request.rid]
        conversation.begin_incarnation()
        return body_fn(txn, request, conversation)

    return handler
