"""The clerk: Figure 5's runtime library.

"The client's operations are translated into queue operations.  This
translation is performed by a *clerk program* that is local to the
client (i.e., it is a runtime library)."

Translation (Figure 5, top):

* ``Connect`` — Register with the request queue and the client's reply
  queue (both stable).  The tags returned by the two registrations are
  the client's ``s_rid`` and ``[r_rid, ckpt]`` respectively.
* ``Send(r, rid)`` — Enqueue the request, tagging the operation with
  ``rid``.
* ``Receive(ckpt)`` — Dequeue the next reply, tagging the operation
  with ``[rid-of-previous-Send, ckpt]``.
* ``Rereceive()`` — Read the element most recently dequeued by this
  client (served by the queue archive or the stable registration copy).
* ``Disconnect`` — Deregister from both queues.

All clerk operations run *outside* any client transaction — the queue
is the "gateway between the non-transaction world of front-ends and the
transactional world of back-ends" (Section 2).  Each is individually
atomic and durable (internal auto-commit at the queue manager).

Section 5's Send variants are provided for benchmark C8:
``send`` (RPC-style: returns after the enqueue is durable),
``send_oneway`` (fire-and-forget through a transport; the client learns
the outcome from the reply or at reconnect), and ``transceive``
(merged Send+Receive).
"""

from __future__ import annotations

import time as _time
from typing import Any

from repro.core.request import Reply, Request
from repro.errors import CancelFailed, NotConnectedError, QueueEmpty
from repro.obs import Observability, get_observability
from repro.queueing.manager import QueueHandle, QueueManager
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder


class Clerk:
    """One client's clerk.  Volatile: a crashed client gets a fresh
    clerk and re-learns everything from Connect."""

    def __init__(
        self,
        client_id: str,
        request_qm: QueueManager,
        request_queue: str,
        reply_qm: QueueManager,
        reply_queue: str,
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
        transport: Any = None,
        obs: Observability | None = None,
    ):
        self.client_id = client_id
        self.request_qm = request_qm
        self.request_queue = request_queue
        self.reply_qm = reply_qm
        self.reply_queue = reply_queue
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.transport = transport  # optional comm layer for one-way sends
        obs = obs if obs is not None else get_observability()
        self._obs_on = obs.enabled
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_sent = metrics.counter(
            "requests_sent_total", "requests sent by clerks", ("client",)
        ).labels(client=client_id)
        self._m_received = metrics.counter(
            "replies_received_total", "replies received by clerks", ("client",)
        ).labels(client=client_id)
        self._m_cancelled = metrics.counter(
            "requests_cancelled_total", "requests cancelled before consumption",
            ("client",),
        ).labels(client=client_id)
        self._m_receive_latency = metrics.histogram(
            "clerk_receive_seconds", "Receive wall time incl. reply wait",
            ("client",),
        ).labels(client=client_id)
        self._h_in: QueueHandle | None = None
        self._h_out: QueueHandle | None = None
        self._rid_tag: str | None = None
        self._last_request_eid: int | None = None
        self._last_reply_eid: int | None = None

    # ------------------------------------------------------------------
    # Connect / Disconnect
    # ------------------------------------------------------------------

    def connect(self) -> tuple[str | None, str | None, Any]:
        """Figure 2/5's Connect: returns ``(s_rid, r_rid, ckpt)``.

        ``s_rid`` — rid of the last request this client sent;
        ``r_rid`` — rid corresponding to the last reply it received;
        ``ckpt`` — the checkpoint it supplied with that Receive.
        All ``None`` for a brand-new client.
        """
        self.injector.reach("clerk.connect.before_register")
        self._h_in, rid_tag, req_eid = self.request_qm.register(
            self.request_queue, self.client_id, stable=True
        )
        self._h_out, reply_tag, reply_eid = self.reply_qm.register(
            self.reply_queue, self.client_id, stable=True
        )
        self.injector.reach("clerk.connect.after_register")
        self._rid_tag = rid_tag
        self._last_request_eid = req_eid
        self._last_reply_eid = reply_eid
        if reply_tag is None:
            r_rid, ckpt = None, None
        else:
            r_rid, ckpt = reply_tag[0], reply_tag[1]
        if self.trace is not None:
            self.trace.record(
                "client.connected",
                rid=rid_tag,
                client=self.client_id,
                r_rid=r_rid,
                ckpt=ckpt,
            )
        return rid_tag, r_rid, ckpt

    def disconnect(self) -> None:
        """Deregister from both queues."""
        self._require_connected()
        self.request_qm.deregister(self._h_in)
        self.reply_qm.deregister(self._h_out)
        if self.trace is not None:
            self.trace.record("client.disconnected", client=self.client_id)
        self._h_in = self._h_out = None
        self._rid_tag = None

    def _require_connected(self) -> None:
        if self._h_in is None or self._h_out is None:
            raise NotConnectedError(f"client {self.client_id!r} is not connected")

    @property
    def connected(self) -> bool:
        return self._h_in is not None

    # ------------------------------------------------------------------
    # Send / Receive / Rereceive
    # ------------------------------------------------------------------

    def send(self, request: Request, rid: str, priority: int = 0) -> int:
        """Enqueue the request, tagged with ``rid``.  "When Send
        returns, the request and rid have been stably stored."  Returns
        the request's eid (kept for Cancel-last-request)."""
        self._require_connected()
        self._rid_tag = rid
        self.injector.reach("clerk.send.before_enqueue")
        # The Send span uses the rid as its trace id; its wire context
        # rides the element headers so the server's processing span (and
        # the reply trip back) stitch into the same trace.
        with self._tracer.start_span(
            "clerk.send", trace_id=rid, client=self.client_id
        ) as span:
            headers = {"rid": rid, "reply_to": request.reply_to}
            ctx = span.context()
            if ctx is not None:
                headers["trace"] = ctx
            eid = self.request_qm.enqueue(
                self._h_in,
                request.to_body(),
                tag=rid,
                priority=priority,
                headers=headers,
            )
        self._m_sent.inc()
        self._last_request_eid = eid
        self.injector.reach("clerk.send.after_enqueue")
        if self.trace is not None:
            self.trace.record("request.sent", rid, client=self.client_id, eid=eid)
        return eid

    def send_oneway(self, request: Request, rid: str, priority: int = 0) -> None:
        """Section 5's unacknowledged Send: "invoke Enqueue using a
        one-way message, instead of a remote procedure call".  The
        enqueue may be lost; the client times out waiting for the reply
        and resynchronizes at reconnect.  Requires a transport."""
        self._require_connected()
        self._rid_tag = rid
        if self.transport is None:
            # Degenerate local case: the "message" cannot be lost.
            self.send(request, rid, priority)
            return
        self.injector.reach("clerk.send_oneway.before_post")
        handle, qm = self._h_in, self.request_qm

        def deliver() -> None:
            eid = qm.enqueue(
                handle,
                request.to_body(),
                tag=rid,
                priority=priority,
                headers={"rid": rid, "reply_to": request.reply_to},
            )
            if self.trace is not None:
                self.trace.record("request.sent", rid, client=self.client_id, eid=eid)

        self.transport.post(deliver)
        if self.trace is not None:
            self.trace.record("request.posted", rid, client=self.client_id)

    def receive(self, ckpt: Any = None, timeout: float | None = 30.0) -> Reply:
        """Dequeue the next reply, tagging the operation with
        ``[rid-of-previous-Send, ckpt]``.

        Raises :class:`~repro.errors.QueueEmpty` on timeout — the
        client treats that as "the reply is not there yet" and may
        retry or reconnect.

        When the queue manager is remote, an at-least-once RPC retry of
        a *successful* Dequeue whose response was lost consumes the
        reply invisibly; the retry then finds the queue empty.  The
        persistent registration detects exactly this (the last recorded
        Dequeue carries this Receive's tag) and the reply is recovered
        with Read — Section 4.3's "a registrant may Read the element
        identified by this eid, even if the last operation was a
        Dequeue"."""
        self._require_connected()
        self.injector.reach("clerk.receive.before_dequeue")
        wall0 = _time.time() if self._obs_on else 0.0
        t0 = _time.perf_counter() if self._obs_on else 0.0
        tag = [self._rid_tag, ckpt]
        try:
            element = self.reply_qm.dequeue(
                self._h_out,
                tag=tag,
                block=True,
                timeout=timeout,
            )
        except QueueEmpty:
            registration = self.reply_qm.registration_info(self._h_out)
            if (
                registration is not None
                and registration.last_op == "deq"
                and registration.last_tag == tag
                and registration.last_eid is not None
            ):
                # Our own lost-response attempt already dequeued it.
                element = self.reply_qm.read(self._h_out, registration.last_eid)
            else:
                raise
        self._last_reply_eid = element.eid
        self.injector.reach("clerk.receive.after_dequeue")
        reply = Reply.from_body(element.body)
        if self._obs_on:
            # Created after the fact (the rid is only known once the
            # reply arrives) with the true start time, parented onto the
            # server's reply-enqueue context.
            span = self._tracer.start_span(
                "clerk.receive",
                trace_id=reply.rid,
                parent=element.headers.get("trace"),
                start=wall0,
                client=self.client_id,
            )
            span.end()
            self._m_received.inc()
            self._m_receive_latency.observe(_time.perf_counter() - t0)
        if self.trace is not None:
            self.trace.record("reply.received", reply.rid, client=self.client_id)
        return reply

    def rereceive(self) -> Reply:
        """Read the reply most recently dequeued by this client — works
        even after the dequeue removed it, via the queue archive or the
        stable registration copy (Section 4.3)."""
        self._require_connected()
        if self._last_reply_eid is None:
            raise NotConnectedError(
                f"client {self.client_id!r} has never received a reply"
            )
        element = self.reply_qm.read(self._h_out, self._last_reply_eid)
        reply = Reply.from_body(element.body)
        if self.trace is not None:
            self.trace.record("reply.rereceived", reply.rid, client=self.client_id)
        return reply

    def transceive(
        self, request: Request, rid: str, ckpt: Any = None, timeout: float | None = 30.0
    ) -> Reply:
        """Section 5's merged operation: "blocks the client until the
        reply arrives"."""
        self.send(request, rid)
        return self.receive(ckpt=ckpt, timeout=timeout)

    # ------------------------------------------------------------------
    # Cancellation (Section 7)
    # ------------------------------------------------------------------

    def cancel_last_request(self) -> bool:
        """Kill_element on the eid of the last request.  True iff the
        request was cancelled before any server consumed it."""
        self._require_connected()
        if self._last_request_eid is None:
            raise CancelFailed(f"client {self.client_id!r} has sent no request")
        killed = self.request_qm.kill_element(self._h_in, self._last_request_eid)
        if killed:
            self._m_cancelled.inc()
            self._tracer.event(
                "request.cancelled", trace_id=self._rid_tag, client=self.client_id
            )
        if self.trace is not None:
            kind = "request.cancelled" if killed else "request.cancel_failed"
            self.trace.record(kind, self._rid_tag, client=self.client_id)
        return killed

    @property
    def last_request_eid(self) -> int | None:
        return self._last_request_eid
