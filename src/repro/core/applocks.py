"""Application-level locks (Section 6).

"...the application can mimic database system locking by creating a
persistent database of locks, setting the appropriate locks for each
database object it accesses, and releasing all of these 'application
locks' just before the final transaction of the multi-transaction
request commits.  Unfortunately, the performance of this approach will
be limited, due to the high overhead of setting locks and the
coarseness of lock granularity."

:class:`AppLockTable` is that persistent database of locks: a KV table
mapping resource name → owning rid, plus a per-rid index so release is
one lookup.  Acquire conflicts abort the acquiring transaction
(retry-level policy is the caller's); benchmark C5 measures the
overhead the paper predicts.
"""

from __future__ import annotations

from repro.errors import TransactionAborted
from repro.storage.kvstore import KVStore
from repro.transaction.manager import Transaction


class AppLockConflict(TransactionAborted):
    """The resource is application-locked by another request."""

    def __init__(self, resource: str, holder: str, requester: str):
        Exception.__init__(
            self,
            f"application lock on {resource!r} held by request {holder!r}, "
            f"wanted by {requester!r}",
        )
        self.txn_id = None
        self.reason = "application lock conflict"
        self.resource = resource
        self.holder = holder
        self.requester = requester


class AppLockTable:
    """A persistent database of request-level locks."""

    def __init__(self, table: KVStore):
        self.table = table
        #: benchmark counters
        self.acquires = 0
        self.conflicts = 0
        self.releases = 0

    @staticmethod
    def _lock_key(resource: str) -> str:
        return f"lock/{resource}"

    @staticmethod
    def _index_key(rid: str) -> str:
        return f"held/{rid}"

    def acquire(self, txn: Transaction, rid: str, resource: str) -> None:
        """Lock ``resource`` for request ``rid`` within ``txn``.

        Idempotent for the same rid.  Raises :class:`AppLockConflict`
        when another request holds it (the caller's transaction should
        then abort and the stage retry later)."""
        self.acquires += 1
        holder = self.table.get(txn, self._lock_key(resource))
        if holder == rid:
            return
        if holder is not None:
            self.conflicts += 1
            raise AppLockConflict(resource, holder, rid)
        self.table.put(txn, self._lock_key(resource), rid)
        held = self.table.get(txn, self._index_key(rid), default=[])
        if resource not in held:
            self.table.put(txn, self._index_key(rid), list(held) + [resource])

    def holder(self, txn: Transaction, resource: str) -> str | None:
        return self.table.get(txn, self._lock_key(resource))

    def release_all(self, txn: Transaction, rid: str) -> int:
        """Release every application lock of ``rid`` — called "just
        before the final transaction of the multi-transaction request
        commits".  Returns how many were released."""
        held = self.table.get(txn, self._index_key(rid), default=[])
        for resource in held:
            if self.table.get(txn, self._lock_key(resource)) == rid:
                self.table.delete(txn, self._lock_key(resource))
                self.releases += 1
        self.table.delete(txn, self._index_key(rid))
        return len(held)

    def held_by(self, txn: Transaction, rid: str) -> list[str]:
        return list(self.table.get(txn, self._index_key(rid), default=[]))
