"""Concurrent client threads — Section 5's extension.

"Another extension is to allow concurrency within a client.  This
amounts to identifying a client by both a client-id and a 'thread'-id.
The system now maintains an array of [req-tag, reply-tag] pairs for the
client, one for each thread-id.  The entire array is returned by a
Connect operation.  To support this, the underlying QM needs a
comparable facility in the Register operation."

The reproduction realizes the "comparable facility" compositionally:
each (client, thread) pair registers as the composite registrant
``"<client>/<thread>"``, so the registration table naturally stores the
per-thread tag array, and :func:`connect_all_threads` reassembles it —
the array-valued Connect the paper describes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.client import Client, ReplyProcessor, UserCheckpoint
from repro.core.clerk import Clerk
from repro.core.system import TPSystem


def thread_registrant(client_id: str, thread_id: int) -> str:
    return f"{client_id}/{thread_id}"


@dataclass(frozen=True)
class ThreadTags:
    """One row of the paper's per-thread tag array."""

    thread_id: int
    s_rid: str | None
    r_rid: str | None
    ckpt: Any


def connect_all_threads(
    system: TPSystem, client_id: str, thread_count: int
) -> list[ThreadTags]:
    """The array-valued Connect: the [req-tag, reply-tag] pair of every
    thread of ``client_id``, recovered from persistent registration."""
    rows: list[ThreadTags] = []
    for thread_id in range(thread_count):
        clerk = _thread_clerk(system, client_id, thread_id)
        s_rid, r_rid, ckpt = clerk.connect()
        rows.append(ThreadTags(thread_id, s_rid, r_rid, ckpt))
    return rows


def _thread_clerk(system: TPSystem, client_id: str, thread_id: int) -> Clerk:
    registrant = thread_registrant(client_id, thread_id)
    return Clerk(
        registrant,
        system.request_qm,
        system.request_queue,
        system.reply_qm,
        system.ensure_reply_queue(registrant),
        trace=system.trace,
        injector=system.injector,
    )


class ThreadedClient:
    """A client running ``thread_count`` concurrent request threads.

    The work list is partitioned round-robin over the threads; each
    thread is an independent Figure 2 client over its own registration
    and private reply queue, so every per-thread guarantee is exactly
    the single-client guarantee, and recovery resynchronizes thread by
    thread.
    """

    def __init__(
        self,
        system: TPSystem,
        client_id: str,
        work: Sequence[Any],
        processors: Sequence[ReplyProcessor],
        user_logs: Sequence[UserCheckpoint] | None = None,
        receive_timeout: float | None = 30.0,
    ):
        if not processors:
            raise ValueError("need at least one thread (processor)")
        self.system = system
        self.client_id = client_id
        self.work = list(work)
        self.thread_count = len(processors)
        self.processors = list(processors)
        self.user_logs = (
            list(user_logs)
            if user_logs is not None
            else [UserCheckpoint() for _ in processors]
        )
        self.receive_timeout = receive_timeout
        self.clients: list[Client] = []

    def _partition(self, thread_id: int) -> list[Any]:
        return self.work[thread_id :: self.thread_count]

    def _client(self, thread_id: int) -> Client:
        registrant = thread_registrant(self.client_id, thread_id)
        return Client(
            registrant,
            _thread_clerk(self.system, self.client_id, thread_id),
            self.processors[thread_id],
            self._partition(thread_id),
            trace=self.system.trace,
            injector=self.system.injector,
            receive_timeout=self.receive_timeout,
            user_log=self.user_logs[thread_id],
        )

    def run(self) -> list[Any]:
        """Run every thread to completion; returns all replies (one list
        per thread)."""
        self.clients = [self._client(t) for t in range(self.thread_count)]
        results: list[Any] = [None] * self.thread_count
        errors: list[BaseException] = []

        def runner(index: int) -> None:
            try:
                results[index] = self.clients[index].run()
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(t,), daemon=True)
            for t in range(self.thread_count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return results
