"""Fork/join multi-transaction requests — Section 6's concurrency
extension.

"This method can be extended to include concurrent execution of
multiple transactions servicing a user request.  The main issue is
forking a request into multiple requests and rejoining the requests
when the concurrent branches complete.  This can be handled by
extending the QM with a trigger mechanism.  A trigger is set to send a
request when all of the replies to earlier concurrent requests have
been received."

:class:`ForkJoinCoordinator` implements that:

* **fork** — within one transaction, split the incoming request into
  one branch request per branch queue, all tagged with the parent rid
  as correlation id and directed to an internal *join queue* for their
  replies;
* **join** — a :class:`~repro.queueing.features.JoinTrigger` on the
  join queue fires when all branch replies are visible; the join
  action runs one transaction that dequeues every branch reply,
  combines them, and enqueues the client's reply.

Recovery: the coordinator is re-created at restart and re-arms its
triggers; JoinTrigger's constructor catch-up re-observes replies that
arrived before the crash.  The join transaction dequeues the branch
replies, so a re-fired trigger after the join committed finds nothing
and does not duplicate the client reply.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.request import Reply, Request
from repro.core.server import Server
from repro.core.system import TPSystem
from repro.errors import QueueEmpty
from repro.queueing.features import JoinTrigger
from repro.transaction.manager import Transaction

#: (txn, parent request) -> list of (branch queue name, branch body)
ForkFn = Callable[[Transaction, Request], list[tuple[str, Any]]]
#: (txn, parent request, branch replies in branch order) -> reply body
JoinFn = Callable[[Transaction, Request, list[Any]], Any]


class ForkJoinCoordinator:
    """Fork a request into concurrent branches; join their replies."""

    def __init__(
        self,
        system: TPSystem,
        name: str,
        branch_queues: list[str],
        fork: ForkFn,
        join: JoinFn,
    ):
        if not branch_queues:
            raise ValueError("need at least one branch queue")
        self.system = system
        self.name = name
        self.branch_queues = list(branch_queues)
        self.fork = fork
        self.join = join
        repo = system.request_repo
        self.join_queue_name = f"{name}.join"
        for qname in self.branch_queues + [self.join_queue_name]:
            if qname not in repo.queues:
                repo.create_queue(qname, error_queue=system.error_queue)
        #: durable fork bookkeeping so recovery can re-arm triggers
        self.state = system.table(f"{name}.forks")
        self._triggers: dict[str, JoinTrigger] = {}
        self._rearm_pending()

    # ------------------------------------------------------------------
    # Fork server (stage 0)
    # ------------------------------------------------------------------

    def fork_server(self, server_name: str | None = None) -> Server:
        """A server on the system request queue that forks each request
        into its branches (one transaction) and arms the join trigger."""
        coordinator = self

        def handler(txn: Transaction, request: Request) -> Any:
            branches = coordinator.fork(txn, request)
            for qname, body in branches:
                branch_request = Request(
                    rid=request.rid,
                    body=body,
                    client_id=request.client_id,
                    reply_to=coordinator.join_queue_name,
                )
                queue = coordinator.system.request_repo.get_queue(qname)
                queue.enqueue(
                    txn,
                    branch_request.to_body(),
                    headers={
                        "rid": request.rid,
                        "reply_to": coordinator.join_queue_name,
                        "corr": request.rid,
                    },
                )
            coordinator.state.put(
                txn,
                f"fork/{request.rid}",
                {
                    "expected": len(branches),
                    "request": request.to_body(),
                    "joined": False,
                },
            )
            txn.on_commit(lambda: coordinator._arm(request.rid, len(branches)))
            from repro.core.multitxn import _FORWARDED

            return _FORWARDED

        from repro.core.multitxn import _StageServer

        return _StageServer(
            server_name or f"{self.name}.fork",
            self.system.request_qm,
            self.system.request_queue,
            handler,
            reply_qm=self.system.reply_qm,
            coordinator=self.system.coordinator,
            trace=self.system.trace,
            injector=self.system.injector,
            final=False,
        )

    # ------------------------------------------------------------------
    # Branch servers
    # ------------------------------------------------------------------

    def branch_server(
        self,
        branch_queue: str,
        handler: Callable[[Transaction, Request], Any],
        server_name: str | None = None,
    ) -> Server:
        """An ordinary Figure 5 server for one branch queue; its reply
        goes to the join queue with the parent's correlation id."""
        return Server(
            server_name or f"{self.name}.{branch_queue}",
            self.system.request_qm,
            branch_queue,
            handler,
            reply_qm=self.system.request_qm,  # join queue is local
            trace=None,  # branch replies are internal, not client replies
            injector=self.system.injector,
        )

    # ------------------------------------------------------------------
    # Join trigger
    # ------------------------------------------------------------------

    def _rearm_pending(self) -> None:
        """Recovery: re-create triggers for forks that never joined."""
        with self.system.request_repo.tm.transaction() as txn:
            pending = [
                (key.split("/", 1)[1], value)
                for key, value in self.state.scan(txn, prefix="fork/")
                if not value.get("joined")
            ]
        for rid, info in pending:
            self._arm(rid, info["expected"])

    def _arm(self, rid: str, expected: int) -> None:
        if rid in self._triggers:
            return
        join_queue = self.system.request_repo.get_queue(self.join_queue_name)
        self._triggers[rid] = JoinTrigger(
            join_queue, rid, expected, lambda replies: self._join(rid)
        )

    def _join(self, rid: str) -> bool:
        """The join transaction: consume the branch replies, emit the
        client reply, mark the fork joined."""
        system = self.system
        repo = system.request_repo
        join_queue = repo.get_queue(self.join_queue_name)
        txn = repo.tm.begin()
        try:
            info = self.state.get(txn, f"fork/{rid}")
            if info is None or info.get("joined"):
                repo.tm.abort(txn, "already joined")
                return True
            request = Request.from_body(info["request"])
            branch_replies: list[Any] = []
            for _ in range(info["expected"]):
                try:
                    element = join_queue.dequeue(
                        txn, selector=lambda e: e.headers.get("corr") == rid
                    )
                except QueueEmpty:
                    # Not all replies present yet (the trigger may fire
                    # on observation catch-up before every branch
                    # committed); give up — it re-fires later.
                    repo.tm.abort(txn, "join incomplete")
                    return False
                branch_replies.append(Reply.from_body(element.body).body)
            reply_body = self.join(txn, request, branch_replies)
            reply = Reply(rid=rid, body=reply_body)
            reply_queue = system.reply_repo.get_queue(request.reply_to)
            reply_queue.enqueue(
                txn,
                reply.to_body(),
                headers={"rid": rid, "corr": rid},
            )
            self.state.put(txn, f"fork/{rid}", {**info, "joined": True})

            def record() -> None:
                if system.trace is not None:
                    system.trace.record("request.executed", rid, server=self.name)
                    system.trace.record("reply.enqueued", rid, server=self.name)

            txn.on_commit(record)
        except BaseException as exc:
            from repro.errors import SimulatedCrash

            # A simulated crash killed the node: there is no process
            # left to run a graceful abort (and the disk is frozen).
            if not isinstance(exc, SimulatedCrash) and not txn.status.terminal:
                repo.tm.abort(txn, "join failure")
            raise
        else:
            if not txn.status.terminal:
                repo.tm.commit(txn)
        return True

    def joined(self, rid: str) -> bool:
        with self.system.request_repo.tm.transaction() as txn:
            info = self.state.get(txn, f"fork/{rid}")
            return bool(info and info.get("joined"))
