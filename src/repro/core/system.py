"""The System Model — Figure 4's wiring.

A :class:`TPSystem` assembles the pieces: a queue repository (or two,
for the distributed variant), the request queue with its error queue,
per-client private reply queues (Section 5's multiple-clients
extension), a shared trace recorder, and factories for clerks, clients,
and servers.

Crash/restart protocol for tests and benchmarks::

    system = TPSystem(injector=inj)
    ...                      # SimulatedCrash flies out of protocol code
    system = system.reopen() # same disks -> restart recovery
    client = system.client("c1", work, device)
    client.run()             # Figure 2 resynchronizes automatically

``reopen`` rebuilds every repository from its (crashed, then recovered)
disk, preserving the trace so guarantee checks span the failure.

Deployment modes (the transport-abstraction refactor):

* ``deployment="inproc"`` (default) — everything in this process over
  simulated disks, byte-identical to the layout every chaos schedule
  and property suite was recorded against.
* ``deployment="tcp"`` — each shard is a real OS process
  (``repro-shardd``) serving the wire protocol over TCP from a file
  disk under ``data_dir``; clerks and servers run in the driver
  against remote facades, and ``kill_shard`` is a real ``SIGKILL``
  whose restart runs real recovery (see :mod:`repro.serve` and
  ``docs/deployment.md``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Sequence

from repro.core.clerk import Clerk
from repro.core.client import Client, ReplyProcessor, UserCheckpoint
from repro.core.request import REPLY_FAILED, Reply, Request
from repro.core.server import Handler, Server
from repro.core.guarantees import GuaranteeChecker
from repro.obs import Observability, get_observability
from repro.queueing.manager import QueueManager
from repro.queueing.placement import PlacementPolicy
from repro.queueing.queue import DequeueMode
from repro.queueing.sharded import ShardedRepository
from repro.replication import FailoverController, ReplicaSet
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder
from repro.storage.disk import Disk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.transaction.deterministic import DeterministicLane
from repro.transaction.twophase import TwoPhaseCoordinator

REQUEST_QUEUE = "req.q"
ERROR_QUEUE = "req.err"


class TPSystem:
    """One assembled TP system (Figure 4)."""

    def __init__(
        self,
        request_disk: Disk | None = None,
        reply_disk: Disk | None = None,
        injector: FaultInjector | None = None,
        trace: TraceRecorder | None = None,
        obs: Observability | None = None,
        *,
        request_queue: str = REQUEST_QUEUE,
        error_queue: str = ERROR_QUEUE,
        max_aborts: int = 3,
        queue_mode: DequeueMode = DequeueMode.SKIP_LOCKED,
        count_crash_attempts: bool = False,
        separate_reply_node: bool = False,
        group_commit: GroupCommitConfig | None = None,
        shards: int = 1,
        shard_disks: Sequence[Disk] | None = None,
        placement: PlacementPolicy | None = None,
        checkpoint_interval_bytes: int | None = None,
        replicate: bool = False,
        standby_disks: Sequence[Disk | None] | None = None,
        replica_controller: FailoverController | None = None,
        cc: str = "2pl",
        deployment: str = "inproc",
        data_dir: str | None = None,
        auto_restart: bool = False,
    ):
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.trace = trace if trace is not None else TraceRecorder()
        self.obs = obs if obs is not None else get_observability()
        self.request_queue = request_queue
        self.error_queue = error_queue
        if deployment not in ("inproc", "tcp"):
            raise ValueError(f"unknown deployment {deployment!r}")
        self.deployment = deployment
        self.supervisor = None  # set by the tcp deployment
        if deployment == "tcp":
            if replicate or separate_reply_node:
                raise ValueError(
                    "the tcp deployment does not combine with replication "
                    "or the legacy separate reply node"
                )
            if injector is not None and injector is not NULL_INJECTOR:
                raise ValueError(
                    "fault injectors are in-process; the tcp deployment "
                    "injects faults by SIGKILLing shards (kill_shard)"
                )
            if cc not in ("2pl", "auto", "deterministic"):
                raise ValueError(
                    f"unknown concurrency-control policy {cc!r}"
                )
            self._init_tcp(
                data_dir=data_dir,
                shards=shards,
                placement=placement,
                cc=cc,
                max_aborts=max_aborts,
                queue_mode=queue_mode,
                count_crash_attempts=count_crash_attempts,
                auto_restart=auto_restart,
            )
            return
        self.group_commit = (
            group_commit if group_commit is not None else GroupCommitConfig()
        )
        if shard_disks:
            shards = len(shard_disks)
        if shards > 1 and separate_reply_node:
            raise ValueError(
                "separate_reply_node is the two-repository legacy layout; "
                "with shards > 1, reply queues are placed across the shards"
            )
        if replicate and separate_reply_node:
            raise ValueError(
                "replication covers the (sharded) request repository; "
                "the legacy separate reply node has no standby"
            )
        if cc not in ("2pl", "auto", "deterministic"):
            raise ValueError(f"unknown concurrency-control policy {cc!r}")
        self.cc = cc
        self.placement = placement
        self._config = {
            "max_aborts": max_aborts,
            "queue_mode": queue_mode,
            "count_crash_attempts": count_crash_attempts,
            "separate_reply_node": separate_reply_node,
            "group_commit": self.group_commit,
            "shards": shards,
            "checkpoint_interval_bytes": checkpoint_interval_bytes,
            "replicate": replicate,
            "cc": cc,
        }

        if shard_disks:
            disks = list(shard_disks)
        else:
            disks = [request_disk if request_disk is not None else MemDisk()]
            disks.extend(MemDisk() for _ in range(shards - 1))
        self.shard_disks: list[Disk] = disks
        self.request_disk = disks[0]
        self.request_repo = ShardedRepository(
            "reqnode", disks, self.injector, obs=self.obs,
            group_commit=self.group_commit, placement=placement,
            checkpoint_interval_bytes=checkpoint_interval_bytes,
        )
        # "auto" and "deterministic" both route the queue-shaped
        # transaction class (auto-commit single-queue enqueues and
        # non-waiting dequeues) through the deterministic lane; other
        # work stays on 2PL either way, so today the two policies
        # differ only in intent ("deterministic" documents that the
        # workload is expected to be lane-shaped).
        self.det_lane = (
            DeterministicLane(
                self.request_repo, obs=self.obs, injector=self.injector
            )
            if cc != "2pl"
            else None
        )
        self.request_qm = QueueManager(
            self.request_repo, cc=cc, lane=self.det_lane
        )

        if separate_reply_node:
            self.reply_disk: Disk = reply_disk if reply_disk is not None else MemDisk()
            self.reply_repo = ShardedRepository(
                "repnode", [self.reply_disk], self.injector, obs=self.obs,
                group_commit=self.group_commit,
                checkpoint_interval_bytes=checkpoint_interval_bytes,
            )
            self.reply_qm = QueueManager(self.reply_repo)
            self.coordinator: TwoPhaseCoordinator | None = TwoPhaseCoordinator(
                self.request_repo.log, name="server-2pc", injector=self.injector,
                obs=self.obs,
            )
        else:
            self.reply_disk = self.request_disk
            self.reply_repo = self.request_repo
            self.reply_qm = self.request_qm
            self.coordinator = None

        if request_queue not in self.request_repo.queues:
            self.request_repo.create_queue(
                request_queue,
                error_queue=error_queue,
                max_aborts=max_aborts,
                mode=queue_mode,
                count_crash_attempts=count_crash_attempts,
                # rid index: cancellation finds a request in O(1)
                index_headers=("rid",),
            )
        if error_queue not in self.request_repo.queues:
            self.request_repo.create_queue(error_queue)

        # Per-shard warm standbys (repro.replication): attached last so
        # the attach-time resync ships the boot records in one pass.
        self.replicas: ReplicaSet | None = None
        self.failover_controller = replica_controller
        if replicate:
            self.replicas = ReplicaSet(
                self.request_repo, standby_disks=standby_disks,
                controller=replica_controller, obs=self.obs,
            )
            self.failover_controller = self.replicas.controller

    # ------------------------------------------------------------------
    # TCP deployment (shards as OS processes; repro.serve)
    # ------------------------------------------------------------------

    def _init_tcp(
        self,
        data_dir: str | None,
        shards: int,
        placement: PlacementPolicy | None,
        cc: str,
        max_aborts: int,
        queue_mode: DequeueMode,
        count_crash_attempts: bool,
        auto_restart: bool,
    ) -> None:
        import tempfile

        from repro.serve.client import (
            RemoteRepository,
            RemoteShardedQueueManager,
        )
        from repro.serve.supervisor import ShardSupervisor

        self.cc = cc
        self.placement = placement
        self.group_commit = GroupCommitConfig()
        self.det_lane = None
        self.replicas = None
        self.failover_controller = None
        self.coordinator = None
        self.shard_disks = []
        self.request_disk = self.reply_disk = None
        self.data_dir = (
            data_dir if data_dir is not None
            else tempfile.mkdtemp(prefix="repro-tcp-")
        )
        self._config = {
            "max_aborts": max_aborts,
            "queue_mode": queue_mode,
            "count_crash_attempts": count_crash_attempts,
            "separate_reply_node": False,
            "group_commit": self.group_commit,
            "shards": shards,
            "checkpoint_interval_bytes": None,
            "replicate": False,
            "cc": cc,
        }
        self.supervisor = ShardSupervisor(
            self.data_dir, shards, name="reqnode", cc=cc,
            auto_restart=auto_restart,
        )
        endpoints = [("127.0.0.1", s.port) for s in self.supervisor.shards]
        self.request_repo = RemoteRepository(
            "reqnode", endpoints, placement=placement, obs=self.obs,
        )
        self.reply_repo = self.request_repo
        self.request_qm = RemoteShardedQueueManager(self.request_repo)
        self.reply_qm = self.request_qm
        if self.request_queue not in self.request_repo.queues:
            self.request_repo.create_queue(
                self.request_queue,
                error_queue=self.error_queue,
                max_aborts=max_aborts,
                mode=queue_mode,
                count_crash_attempts=count_crash_attempts,
                index_headers=("rid",),
            )
        if self.error_queue not in self.request_repo.queues:
            self.request_repo.create_queue(self.error_queue)

    def _tcp_only(self, what: str) -> None:
        if self.deployment != "tcp":
            raise ValueError(f"{what} requires TPSystem(deployment='tcp')")

    def kill_shard(self, index: int) -> None:
        """SIGKILL shard ``index``'s process — the real ``node.kill``."""
        self._tcp_only("kill_shard")
        self.supervisor.kill(index)

    def restart_shard(self, index: int) -> None:
        """Boot shard ``index`` again over its data directory: restart
        recovery plus the supervisor's in-doubt 2PC resolution pass."""
        self._tcp_only("restart_shard")
        self.supervisor.restart(index)

    def close(self) -> None:
        """Release the system's resources (both deployments)."""
        if self.deployment == "tcp":
            self.request_repo.close()
            self.supervisor.close()
            return
        repos = {id(self.request_repo): self.request_repo,
                 id(self.reply_repo): self.reply_repo}.values()
        for repo in repos:
            repo.close()
        if self.replicas is not None:
            self.replicas.detach()

    # ------------------------------------------------------------------
    # Reply queues (private per client, Section 5)
    # ------------------------------------------------------------------

    def reply_queue_name(self, client_id: str) -> str:
        return f"reply.{client_id}"

    def ensure_reply_queue(self, client_id: str) -> str:
        name = self.reply_queue_name(client_id)
        if name not in self.reply_repo.queues:
            self.reply_repo.create_queue(name)
        return name

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def clerk(self, client_id: str) -> Clerk:
        reply_queue = self.ensure_reply_queue(client_id)
        return Clerk(
            client_id,
            self.request_qm,
            self.request_queue,
            self.reply_qm,
            reply_queue,
            trace=self.trace,
            injector=self.injector,
            obs=self.obs,
        )

    def client(
        self,
        client_id: str,
        work: Sequence[Any],
        processor: ReplyProcessor,
        receive_timeout: float | None = 30.0,
        user_log: "UserCheckpoint | None" = None,
    ) -> Client:
        return Client(
            client_id,
            self.clerk(client_id),
            processor,
            work,
            trace=self.trace,
            injector=self.injector,
            receive_timeout=receive_timeout,
            user_log=user_log,
        )

    def server(
        self,
        name: str,
        handler: Handler,
        request_queue: str | None = None,
        selector: Callable[..., bool] | None = None,
    ) -> Server:
        return Server(
            name,
            self.request_qm,
            request_queue or self.request_queue,
            handler,
            reply_qm=self.reply_qm,
            coordinator=self.coordinator,
            trace=self.trace,
            injector=self.injector,
            selector=selector,
            obs=self.obs,
        )

    def error_reply_server(self, name: str = "error-replier") -> Server:
        """A server on the error queue that turns each dead request into
        a failure reply — completing the paper's "the reply is a promise
        that it will not attempt to execute the request any more"."""

        def handler(_txn, request: Request):
            return Reply(
                rid=request.rid,
                body={"error": "request moved to error queue", "request": request.body},
                status=REPLY_FAILED,
            )

        return Server(
            name,
            self.request_qm,
            self.error_queue,
            handler,
            reply_qm=self.reply_qm,
            coordinator=self.coordinator,
            trace=self.trace,
            injector=self.injector,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    # Tables (application state on the request node)
    # ------------------------------------------------------------------

    def table(self, name: str):
        return self.request_repo.create_table(name)

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def reopen(self, injector: FaultInjector | None = None) -> "TPSystem":
        """Restart the system on the same disks after a crash.

        Disks left in the crashed state are brought back online first;
        the trace recorder carries over so guarantee checks span the
        failure.  Crash/recover is duck-typed so decorated disks
        (e.g. :class:`~repro.storage.faults.FaultyDisk` over a
        :class:`MemDisk`) restart the same way.

        If a repository's WAL panicked (a flush failed), its disk is
        crashed first even when the "process" is still running: a panic
        restart must discard the unflushed buffers whose durability is
        unknowable, exactly as a power failure would, so recovery sees
        only the durable prefix.
        """
        if self.deployment == "tcp":
            raise ValueError(
                "reopen is the in-process restart; the tcp deployment "
                "restarts real processes via kill_shard/restart_shard"
            )
        repos = {id(self.request_repo): self.request_repo,
                 id(self.reply_repo): self.reply_repo}.values()
        for repo in repos:
            # Stop the old process's background checkpointers before
            # the new one starts its own over the same disks.
            repo.close()
        if self.replicas is not None:
            # The standbys survive the restart on their own disks; the
            # rebuilt system re-attaches fresh shippers to them.
            self.replicas.detach()
        panicked = any(repo.wal_panicked for repo in repos)
        for disk in self._all_disks():
            crashed = getattr(disk, "crashed", None)
            if panicked and crashed is False:
                disk.crash()
                crashed = True
            if crashed and hasattr(disk, "recover"):
                disk.recover()
        return TPSystem(
            request_disk=self.request_disk,
            reply_disk=self.reply_disk if self._config["separate_reply_node"] else None,
            injector=injector,
            trace=self.trace,
            obs=self.obs,
            request_queue=self.request_queue,
            error_queue=self.error_queue,
            max_aborts=self._config["max_aborts"],
            queue_mode=self._config["queue_mode"],
            count_crash_attempts=self._config["count_crash_attempts"],
            separate_reply_node=self._config["separate_reply_node"],
            group_commit=self._config["group_commit"],
            shard_disks=self.shard_disks if self._config["shards"] > 1 else None,
            placement=self.placement,
            checkpoint_interval_bytes=self._config["checkpoint_interval_bytes"],
            replicate=self._config["replicate"],
            standby_disks=(self.replicas.standby_disks()
                           if self.replicas is not None else None),
            replica_controller=self.failover_controller,
            cc=self._config["cc"],
        )

    def fail_over(
        self,
        index: int = 0,
        *,
        reason: str = "node.kill",
        injector: FaultInjector | None = None,
        wrap_promoted: Callable[[Disk], Disk] | None = None,
    ) -> "TPSystem":
        """Promote shard ``index``'s warm standby and rebuild the
        system with the promoted image as that shard's disk.

        The deposed primary is fenced (its WAL refuses all further
        writes), its disk is dropped from the new system, and the
        rebuild's restart recovery — bounded by the shipped checkpoint
        — plus the per-shard epoch bump and in-doubt 2PC resolution
        happen exactly as on any boot.  Surviving shards keep their
        disks and standbys; the promoted shard gets a fresh, empty
        standby that catches up on the first pump.  The elapsed wall
        time lands in the ``failover_rto_seconds`` histogram.

        ``wrap_promoted`` lets a harness re-wrap the promoted image
        (e.g. in a :class:`~repro.storage.faults.FaultyDisk`) before
        the new system boots from it.
        """
        if self.replicas is None:
            raise ValueError(
                "fail_over requires a system built with replicate=True"
            )
        started = perf_counter()
        controller = self.failover_controller
        promoted = self.replicas.fail_over(index, reason=reason)
        standby_disks: list[Disk | None] = [
            None if position == index else standby.disk
            for position, standby in enumerate(self.replicas.standbys)
        ]
        self.replicas.detach()
        repos = {id(self.request_repo): self.request_repo,
                 id(self.reply_repo): self.reply_repo}.values()
        for repo in repos:
            repo.close()
        # The old primary is dead by definition of a failover; make
        # sure nothing can quietly keep using its disk.
        deposed = self.shard_disks[index]
        if getattr(deposed, "crashed", None) is False:
            deposed.crash()
        if wrap_promoted is not None:
            promoted = wrap_promoted(promoted)
        disks: list[Disk] = list(self.shard_disks)
        disks[index] = promoted
        for position, disk in enumerate(disks):
            if position == index:
                continue
            crashed = getattr(disk, "crashed", None)
            if self.request_repo.shards[position].log.wal.panicked and crashed is False:
                disk.crash()
                crashed = True
            if crashed and hasattr(disk, "recover"):
                disk.recover()
        system = TPSystem(
            injector=injector,
            trace=self.trace,
            obs=self.obs,
            request_queue=self.request_queue,
            error_queue=self.error_queue,
            max_aborts=self._config["max_aborts"],
            queue_mode=self._config["queue_mode"],
            count_crash_attempts=self._config["count_crash_attempts"],
            group_commit=self._config["group_commit"],
            shard_disks=disks,
            placement=self.placement,
            checkpoint_interval_bytes=self._config["checkpoint_interval_bytes"],
            replicate=True,
            standby_disks=standby_disks,
            replica_controller=controller,
            cc=self._config["cc"],
        )
        rto = perf_counter() - started
        if controller is not None:
            controller.observe_rto(index, rto)
        self.obs.flight.record("failover.complete", shard=index, rto=rto)
        return system

    def _all_disks(self) -> list[Disk]:
        """Every distinct disk of every repository shard, in order."""
        seen: dict[int, Disk] = {}
        for disk in (*self.shard_disks, self.reply_disk):
            seen.setdefault(id(disk), disk)
        return list(seen.values())

    def crash(self) -> None:
        """Crash every node now (used by scenarios that crash between
        protocol steps rather than via an injector point).  Duck-typed:
        any disk exposing ``crash``/``crashed`` participates, including
        decorators like :class:`~repro.storage.faults.FaultyDisk`."""
        if self.deployment == "tcp":
            raise ValueError(
                "the tcp deployment crashes real processes: kill_shard"
            )
        for disk in self._all_disks():
            if getattr(disk, "crashed", None) is False:
                disk.crash()

    def crash_shard(self, index: int) -> None:
        """Crash one request-repository shard's disk (partial failure).

        The rest of the system keeps running; transactions touching the
        crashed shard fail until :meth:`reopen` recovers it."""
        disk = self.request_repo.disks[index]
        if getattr(disk, "crashed", None) is False:
            disk.crash()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def checker(self) -> GuaranteeChecker:
        return GuaranteeChecker(self.trace)

    # -- observability conveniences ------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """JSON-ready snapshot of this system's metrics registry."""
        return self.obs.metrics.snapshot()

    def metrics_dashboard(self) -> str:
        """Human-readable metrics summary."""
        return self.obs.metrics.render_dashboard()

    def span_timeline(self, rid: str) -> str:
        """Reconstructed lifetime of one request id (requires an
        enabled :class:`~repro.obs.Observability`)."""
        return self.obs.tracer.timeline(rid)

    def drain(
        self, server: "Server | Sequence[Server]", max_requests: int = 10_000
    ) -> int:
        """Process until the queues are empty; returns the number
        processed (test convenience).  Accepts one server or several —
        multi-shard systems typically drain with one server per shard,
        round-robin until none of them finds work."""
        servers = [server] if isinstance(server, Server) else list(server)
        processed = 0
        progressed = True
        while progressed and processed < max_requests:
            progressed = False
            for srv in servers:
                if processed >= max_requests:
                    break
                if srv.process_one():
                    processed += 1
                    progressed = True
        return processed

    def queue_depths(self, by_shard: bool = False) -> dict[str, int]:
        """Depth of every queue across every repository shard.

        ``by_shard=True`` prefixes each entry with its owning shard
        (``s0:req.q``) so partial-shard tests can assert placement; the
        default keys stay shard-agnostic and therefore identical to the
        unsharded layout.
        """
        if by_shard:
            depths = {
                f"s{index}:{name}": depth
                for index, shard_depths in
                self.request_repo.depths_by_shard().items()
                for name, depth in shard_depths.items()
            }
        else:
            depths = {
                name: queue.depth()
                for name, queue in self.request_repo.queues.items()
            }
        if self.reply_repo is not self.request_repo:
            depths.update(
                {
                    f"reply:{name}": queue.depth()
                    for name, queue in self.reply_repo.queues.items()
                }
            )
        return depths
