"""The client program — Figure 2, run as a fault-tolerant sequential
program.

The client is *not* transactional (Section 2's final design): it sends
and receives outside any transaction, and at recovery it determines its
last non-idempotent operation (the Send, identified by ``s_rid``) and
reconstructs its internal state — here, its position in the work list,
parsed from the rid sequence number.

Connect-time resynchronization (Figure 2 lines 2–11):

* ``s_rid != r_rid`` — a request is in flight, its reply not yet
  received: Receive it (again) and process it.
* ``s_rid == r_rid`` and the device state still equals the ckpt stored
  with that Receive — the reply was received but *not* processed:
  Rereceive and process it.
* otherwise — the previous request completed; continue with new work.

The reply processor is a testable device (Section 3): its ``state()``
is read before every Receive and travels as the ``ckpt`` tag.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence

from repro.core.clerk import Clerk
from repro.core.request import Reply, Request, make_rid, rid_sequence
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder


class ReplyProcessor(Protocol):
    """A testable output device (Section 3 / [Pausch 88])."""

    def state(self) -> Any:
        """Readable device state, e.g. the next ticket number."""

    def process(self, rid: str, reply_body: Any) -> None:
        """Consume the reply — atomic, possibly non-idempotent."""


class UserCheckpoint:
    """The user's durable memory (Section 11).

    "So the user should checkpoint that identifier (e.g., on a piece of
    paper), so the user can figure out where the user and client left
    off."  Once the client Disconnects, the *system* remembers nothing
    (Deregister destroys the registration), so only the user's own
    record prevents an amnesiac restart from re-submitting completed
    work.  The object survives client crashes, like the piece of paper.
    """

    def __init__(self) -> None:
        self._done = False
        self.note: Any = None

    def mark_done(self, note: Any = None) -> None:
        self._done = True
        self.note = note

    def is_done(self) -> bool:
        return self._done


class Client:
    """Figure 2's client.  Construct a fresh instance after each crash
    (its state is volatile); the *device* and the *user checkpoint*
    persist across client restarts, like a real ticket printer and a
    real piece of paper would.
    """

    def __init__(
        self,
        client_id: str,
        clerk: Clerk,
        processor: ReplyProcessor,
        work: Sequence[Any],
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
        receive_timeout: float | None = 30.0,
        user_log: UserCheckpoint | None = None,
    ):
        self.client_id = client_id
        self.clerk = clerk
        self.processor = processor
        self.work = list(work)
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.receive_timeout = receive_timeout
        self.user_log = user_log
        self.replies: list[Reply] = []
        self.finished = False

    # ------------------------------------------------------------------
    # The program of Figure 2
    # ------------------------------------------------------------------

    def run(self) -> list[Reply]:
        """Execute the whole work list with connect-time
        resynchronization; returns the replies processed in this
        incarnation."""
        if self.user_log is not None and self.user_log.is_done():
            # The user's own record says everything finished before a
            # previous Disconnect; re-running would re-submit requests
            # the system has already forgotten about (Section 11).
            self.finished = True
            return []
        next_sequence = self.resynchronize()
        while next_sequence <= len(self.work):
            body = self.work[next_sequence - 1]
            rid = make_rid(self.client_id, next_sequence)
            request = Request(
                rid=rid,
                body=body,
                client_id=self.client_id,
                reply_to=self.clerk.reply_queue,
            )
            self.clerk.send(request, rid)
            self.injector.reach("client.after_send")
            ckpt = self.processor.state()
            reply = self.clerk.receive(ckpt=ckpt, timeout=self.receive_timeout)
            self.injector.reach("client.after_receive")
            self._process(reply)
            self.injector.reach("client.after_process")
            next_sequence += 1
        if self.user_log is not None:
            # Checkpoint *before* Disconnect: once deregistered, the
            # system keeps no evidence that this work ever ran.
            self.user_log.mark_done(note=len(self.work))
        self.clerk.disconnect()
        self.finished = True
        return self.replies

    def resynchronize(self) -> int:
        """Figure 2 lines 2–11.  Returns the sequence number of the next
        request to send (1 for a fresh client)."""
        s_rid, r_rid, ckpt = self.clerk.connect()
        self.injector.reach("client.after_connect")
        if s_rid is None:
            return 1
        if self.trace is not None:
            # The registration proves this request was durably sent, even
            # if the pre-crash incarnation died before it could say so.
            self.trace.record("request.sent", s_rid, client=self.client_id, resync=True)
        if s_rid != r_rid:
            # Request in flight; receive its reply (possibly again).
            if self.trace is not None:
                self.trace.record("client.resync_receive", s_rid, client=self.client_id)
            reply = self.clerk.receive(
                ckpt=self.processor.state(), timeout=self.receive_timeout
            )
            self.injector.reach("client.after_receive")
            self._process(reply)
            self.injector.reach("client.after_process")
        elif not self._reply_processed(ckpt):
            # Reply was received but never consumed by the device.
            if self.trace is not None:
                self.trace.record("client.resync_rereceive", s_rid, client=self.client_id)
            reply = self.clerk.rereceive()
            self._process(reply)
            self.injector.reach("client.after_process")
        return rid_sequence(s_rid) + 1

    def _reply_processed(self, ckpt: Any) -> bool:
        """Testable-device comparison (Section 3): the ckpt stored with
        the last Receive is the device state *before* processing; if
        the device still shows it, the reply was not processed."""
        if ckpt is None:
            # No checkpoint recorded (e.g. an untagged legacy Receive):
            # assume unprocessed — at-least-once allows reprocessing.
            return False
        return self.processor.state() != ckpt

    def _process(self, reply: Reply) -> None:
        self.processor.process(reply.rid, reply.body)
        self.replies.append(reply)

    # ------------------------------------------------------------------
    # Cancellation entry point (Section 7)
    # ------------------------------------------------------------------

    def send_only(self, sequence: int) -> str:
        """Send request ``sequence`` without waiting for the reply
        (used by cancellation scenarios and tests)."""
        body = self.work[sequence - 1]
        rid = make_rid(self.client_id, sequence)
        request = Request(
            rid=rid,
            body=body,
            client_id=self.client_id,
            reply_to=self.clerk.reply_queue,
        )
        self.clerk.send(request, rid)
        return rid

    def cancel_last_request(self) -> bool:
        return self.clerk.cancel_last_request()
