"""Client state machines — Figure 1 and Figure 7 made executable.

Figure 1 (non-interactive): Connect branches to ``REQ_SENT`` or
``REPLY_RECVD`` depending on the rids it returns; Send moves to
``REQ_SENT``; Receive moves to ``REPLY_RECVD``; Disconnect ends.

Figure 7 (interactive) adds ``INTERMEDIATE_IO``: from ``REQ_SENT`` the
client may receive an intermediate output (→ ``INTERMEDIATE_IO``),
send intermediate input (→ ``REQ_SENT``), cycling until the final
reply arrives (→ ``REPLY_RECVD``).

The machine *enforces* the protocol of Section 3 ("the client offers
requests one-at-a-time"; each Send implicitly acknowledges the previous
reply): illegal transitions raise
:class:`~repro.errors.ProtocolViolation`.  Benchmark F1 drives every
legal path and asserts every illegal edge is rejected.
"""

from __future__ import annotations

import enum

from repro.errors import ProtocolViolation


class ClientState(enum.Enum):
    DISCONNECTED = "disconnected"
    CONNECTED = "connected"
    REQ_SENT = "req_sent"
    INTERMEDIATE_IO = "intermediate_io"
    REPLY_RECVD = "reply_recvd"


class ClientOp(enum.Enum):
    CONNECT = "connect"
    DISCONNECT = "disconnect"
    SEND = "send"
    RECEIVE = "receive"
    RERECEIVE = "rereceive"
    RECV_INTERMEDIATE = "recv_intermediate"
    SEND_INTERMEDIATE = "send_intermediate"


#: (state, op) -> next state.  RECEIVE from REQ_SENT covers both the
#: normal path and the resynchronization Receive of Figure 2 line 5.
_NON_INTERACTIVE: dict[tuple[ClientState, ClientOp], ClientState] = {
    (ClientState.DISCONNECTED, ClientOp.CONNECT): ClientState.CONNECTED,
    # Figure 1: Connect "branches to Req-Sent or Reply-Recvd depending
    # on the rids returned" — modelled as explicit resume transitions.
    (ClientState.CONNECTED, ClientOp.SEND): ClientState.REQ_SENT,
    (ClientState.CONNECTED, ClientOp.RECEIVE): ClientState.REPLY_RECVD,
    (ClientState.CONNECTED, ClientOp.RERECEIVE): ClientState.REPLY_RECVD,
    (ClientState.CONNECTED, ClientOp.DISCONNECT): ClientState.DISCONNECTED,
    (ClientState.REQ_SENT, ClientOp.RECEIVE): ClientState.REPLY_RECVD,
    (ClientState.REPLY_RECVD, ClientOp.SEND): ClientState.REQ_SENT,
    (ClientState.REPLY_RECVD, ClientOp.RERECEIVE): ClientState.REPLY_RECVD,
    (ClientState.REPLY_RECVD, ClientOp.DISCONNECT): ClientState.DISCONNECTED,
}

_INTERACTIVE_EXTRA: dict[tuple[ClientState, ClientOp], ClientState] = {
    (ClientState.REQ_SENT, ClientOp.RECV_INTERMEDIATE): ClientState.INTERMEDIATE_IO,
    (ClientState.INTERMEDIATE_IO, ClientOp.SEND_INTERMEDIATE): ClientState.REQ_SENT,
}


class ClientStateMachine:
    """Executable transition system for Figures 1 and 7."""

    def __init__(self, interactive: bool = False):
        self.interactive = interactive
        self.state = ClientState.DISCONNECTED
        self.history: list[tuple[ClientState, ClientOp, ClientState]] = []

    @property
    def transitions(self) -> dict[tuple[ClientState, ClientOp], ClientState]:
        table = dict(_NON_INTERACTIVE)
        if self.interactive:
            table.update(_INTERACTIVE_EXTRA)
        return table

    def can(self, op: ClientOp) -> bool:
        return (self.state, op) in self.transitions

    def apply(self, op: ClientOp) -> ClientState:
        """Take the transition for ``op``; raise on an illegal edge."""
        target = self.transitions.get((self.state, op))
        if target is None:
            raise ProtocolViolation(
                f"operation {op.value!r} is illegal in state {self.state.value!r}"
            )
        self.history.append((self.state, op, target))
        self.state = target
        return target

    def crash(self) -> None:
        """A client failure: volatile state (including this machine)
        is lost; the *recovered* machine starts DISCONNECTED and must
        Connect to resynchronize."""
        self.state = ClientState.DISCONNECTED

    def legal_ops(self) -> list[ClientOp]:
        return [op for (state, op) in self.transitions if state is self.state]

    @staticmethod
    def all_states(interactive: bool = False) -> list[ClientState]:
        states = [
            ClientState.DISCONNECTED,
            ClientState.CONNECTED,
            ClientState.REQ_SENT,
            ClientState.REPLY_RECVD,
        ]
        if interactive:
            states.insert(3, ClientState.INTERMEDIATE_IO)
        return states
