"""Testable output devices (Section 3, after [Pausch 88]).

"Exactly-once is important if reply processing is not idempotent, e.g.,
if it involves printing a ticket or dispensing cash.  This is easy if
the output device is *testable*, meaning that the client can read the
state of the device, such as the next ticket to be printed."

A testable device exposes :meth:`state`, read by the client *before*
each Receive and passed as the ``ckpt`` parameter; after a failure the
client compares the device's current state with the ckpt returned by
Connect — if they differ, the reply was already processed.

:class:`TicketPrinter` and :class:`CashDispenser` are the paper's two
examples; :class:`DisplayWithUserIds` models the idempotent
alternative ("the user supplies a unique id for each request ... and
the user can detect and ignore duplicate replies").
"""

from __future__ import annotations

from typing import Any

from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder


class TicketPrinter:
    """Prints numbered tickets; ``state`` is the next ticket number."""

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
    ):
        self.next_ticket = 1
        self.printed: list[tuple[int, str]] = []  # (ticket number, rid)
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR

    def state(self) -> int:
        """Testable-device read: the next ticket to be printed."""
        return self.next_ticket

    def process(self, rid: str, reply_body: Any) -> None:
        """Print one ticket — atomic and non-idempotent."""
        self.injector.reach("device.ticket.before_print")
        ticket = self.next_ticket
        self.printed.append((ticket, rid))
        self.next_ticket += 1
        if self.trace is not None:
            self.trace.record("reply.processed", rid, ticket=ticket)
        self.injector.reach("device.ticket.after_print")

    def tickets_for(self, rid: str) -> list[int]:
        return [t for (t, r) in self.printed if r == rid]


class CashDispenser:
    """Dispenses cash; ``state`` is the cumulative amount dispensed."""

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
    ):
        self.dispensed_total = 0
        self.dispensed: list[tuple[str, int]] = []
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR

    def state(self) -> int:
        return self.dispensed_total

    def process(self, rid: str, reply_body: Any) -> None:
        amount = 0
        if isinstance(reply_body, dict):
            amount = int(reply_body.get("amount", 0))
        self.injector.reach("device.cash.before_dispense")
        self.dispensed.append((rid, amount))
        self.dispensed_total += amount
        if self.trace is not None:
            self.trace.record("reply.processed", rid, amount=amount)
        self.injector.reach("device.cash.after_dispense")


class DisplayWithUserIds:
    """An idempotent display: shows (rid, reply) pairs; duplicates are
    detected by the user via the rid and ignored — the paper's
    at-least-once-is-fine device.  ``state`` is constant, so the client
    can never prove a reply was processed and will re-process; that is
    the intended behaviour."""

    def __init__(self, trace: TraceRecorder | None = None):
        self.shown: list[tuple[str, Any]] = []
        self.trace = trace

    def state(self) -> int:
        return 0

    def process(self, rid: str, reply_body: Any) -> None:
        self.shown.append((rid, reply_body))
        if self.trace is not None:
            duplicate = any(r == rid for r, _ in self.shown[:-1])
            self.trace.record("reply.processed", rid, duplicate=duplicate)

    def distinct_rids(self) -> int:
        return len({rid for rid, _ in self.shown})
