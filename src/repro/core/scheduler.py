"""Request scheduling — Section 10.

"In this paper, we ignored the important issue of scheduling requests.
Requests may be scheduled for the server by priority, request contents
(highest dollar amount first), submission time, etc.  The server itself
is subject to scheduling policy, which determines when it should run
and how many instances (threads) it should run.  The request scheduler
is a major component of most TP monitors, and usually requires a QM
with content-based retrieval capability."

Two components:

* :class:`RequestScheduler` — admission-side scheduling: assigns each
  outgoing request a priority and/or a server class, using the
  policies the paper names (priority, content — "highest dollar amount
  first" — and submission time, which is the queue's intrinsic FIFO).
* :class:`ServerPool` — execution-side scheduling: keeps between
  ``min_servers`` and ``max_servers`` server threads on a queue,
  growing when the committed depth crosses ``scale_up_depth`` (wired to
  the Section 9 alert-threshold feature) and shrinking when drained.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.server import Handler, Server
from repro.core.system import TPSystem
from repro.obs import Observability, get_observability
from repro.queueing.element import Element
from repro.queueing.selectors import priority_from

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SchedulingPolicy:
    """How to place one request.

    ``priority_fn`` maps the request body to an integer priority
    (higher = served first).  ``class_fn`` maps the body to a server
    class name; requests of different classes can be served by
    different, class-filtered servers on the same queue (content-based
    retrieval, Section 10).
    """

    name: str
    priority_fn: Callable[[Any], int] | None = None
    class_fn: Callable[[Any], str] | None = None


def fifo_policy() -> SchedulingPolicy:
    """Submission-time order (the queue's intrinsic order)."""
    return SchedulingPolicy(name="fifo")


def priority_policy(fn: Callable[[Any], int]) -> SchedulingPolicy:
    return SchedulingPolicy(name="priority", priority_fn=fn)


def highest_amount_policy(field: str = "amount") -> SchedulingPolicy:
    """The paper's example: "highest dollar amount first"."""
    return SchedulingPolicy(
        name=f"highest-{field}",
        priority_fn=lambda body: priority_from(body, field)
        if isinstance(body, dict)
        else 0,
    )


def class_policy(fn: Callable[[Any], str]) -> SchedulingPolicy:
    return SchedulingPolicy(name="class", class_fn=fn)


class RequestScheduler:
    """Admission-side scheduler: wraps a clerk's Send so every request
    is enqueued with the policy's priority and class header."""

    def __init__(self, policy: SchedulingPolicy, obs: Observability | None = None):
        self.policy = policy
        self.scheduled = 0
        obs = obs if obs is not None else get_observability()
        self._m_scheduled = obs.metrics.counter(
            "scheduler_requests_total", "requests admitted by a scheduler",
            ("policy",),
        ).labels(policy=policy.name)

    def priority_for(self, body: Any) -> int:
        if self.policy.priority_fn is None:
            return 0
        return int(self.policy.priority_fn(body))

    def class_for(self, body: Any) -> str | None:
        if self.policy.class_fn is None:
            return None
        return self.policy.class_fn(body)

    def send(self, clerk, request, rid: str) -> int:
        """Send ``request`` through ``clerk`` with scheduling applied."""
        self.scheduled += 1
        self._m_scheduled.inc()
        server_class = self.class_for(request.body)
        if server_class is not None:
            request.scratch["server_class"] = server_class
        return clerk.send(request, rid, priority=self.priority_for(request.body))

    @staticmethod
    def class_selector(server_class: str) -> Callable[[Element], bool]:
        """Selector for a server that serves only one class."""

        def select(element: Element) -> bool:
            body = element.body
            scratch = body.get("scratch", {}) if isinstance(body, dict) else {}
            return scratch.get("server_class") == server_class

        return select


class ServerPool:
    """Execution-side scheduler: an elastic pool of identical servers.

    Grows one server (up to ``max_servers``) whenever the queue's
    committed depth reaches ``scale_up_depth``; shrinks back to
    ``min_servers`` when the queue has been empty for
    ``idle_polls`` consecutive polls.  The whole pool dequeues the same
    queue, so scaling *is* the load sharing of Section 1.
    """

    def __init__(
        self,
        system: TPSystem,
        handler: Handler,
        *,
        name: str = "pool",
        min_servers: int = 1,
        max_servers: int = 4,
        scale_up_depth: int = 8,
        idle_polls: int = 20,
        poll_timeout: float = 0.02,
        obs: Observability | None = None,
    ):
        if not 1 <= min_servers <= max_servers:
            raise ValueError("need 1 <= min_servers <= max_servers")
        self.system = system
        self.handler = handler
        self.name = name
        self.min_servers = min_servers
        self.max_servers = max_servers
        self.scale_up_depth = scale_up_depth
        self.idle_polls = idle_polls
        self.poll_timeout = poll_timeout
        self._servers: list[Server] = []
        self._mutex = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self.scale_ups = 0
        self.scale_downs = 0
        self._retired_processed = 0
        obs = obs if obs is not None else getattr(system, "obs", None) or get_observability()
        self._obs_on = obs.enabled
        metrics = obs.metrics
        self._m_size = metrics.gauge(
            "pool_size", "server threads in the pool", ("pool",)
        ).labels(pool=name)
        self._m_scale_ups = metrics.counter(
            "pool_scale_ups_total", "pool grow events", ("pool",)
        ).labels(pool=name)
        self._m_scale_downs = metrics.counter(
            "pool_scale_downs_total", "pool shrink events", ("pool",)
        ).labels(pool=name)
        if self._obs_on:
            self._m_size.set_function(self.size)

    # -- sizing -----------------------------------------------------------

    def size(self) -> int:
        with self._mutex:
            return len(self._servers)

    def _spawn(self) -> None:
        with self._mutex:
            index = len(self._servers)
            if index >= self.max_servers:
                return
            server = self.system.server(f"{self.name}-{index}", self.handler)
            server.start(poll_timeout=self.poll_timeout)
            self._servers.append(server)

    def _shrink_to_min(self) -> None:
        with self._mutex:
            extras = self._servers[self.min_servers :]
            del self._servers[self.min_servers :]
        for server in extras:
            server.stop()
            self._retired_processed += server.stats.processed
        if extras:
            self.scale_downs += 1
            self._m_scale_downs.inc()
            logger.debug("pool %r shrank to %d servers", self.name, self.min_servers)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.min_servers):
            self._spawn()
        self._stop.clear()
        self._monitor = threading.Thread(target=self._watch, daemon=True)
        self._monitor.start()

    def _watch(self) -> None:
        queue = self.system.request_repo.get_queue(self.system.request_queue)
        idle = 0
        while not self._stop.wait(self.poll_timeout):
            depth = queue.depth()
            if depth >= self.scale_up_depth and self.size() < self.max_servers:
                self._spawn()
                self.scale_ups += 1
                self._m_scale_ups.inc()
                logger.debug(
                    "pool %r grew to %d servers (depth=%d)",
                    self.name, self.size(), depth,
                )
                idle = 0
            elif depth == 0:
                idle += 1
                if idle >= self.idle_polls and self.size() > self.min_servers:
                    self._shrink_to_min()
                    idle = 0
            else:
                idle = 0

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        with self._mutex:
            servers, self._servers = self._servers, []
        for server in servers:
            server.stop()
            self._retired_processed += server.stats.processed

    def total_processed(self) -> int:
        with self._mutex:
            servers = list(self._servers)
        return self._retired_processed + sum(s.stats.processed for s in servers)
