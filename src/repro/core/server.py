"""The transactional server loop — Figure 5, bottom.

"For each request, the server dequeues the request, processes it, and
enqueues the reply, all within a transaction."

* An abort (application error, deadlock, crash) returns the request to
  the queue; the error-queue bound of Section 4.2 guarantees
  termination for poisoned requests.
* A handler may also *succeed with a failure reply*
  (``Reply(status="failed")``): the paper's "unsuccessfully attempting
  to execute the request, and then returning a reply that indicates
  that fact" — that is still exactly-once processing.
* When requests and replies live in different repositories
  (distributed deployment), the server runs one transaction branch per
  repository and commits them with two-phase commit — or, per
  Section 6, the application is restructured as a multi-transaction
  request to avoid 2PC entirely (benchmark F6 compares both).

Trace events: ``request.executed`` is recorded via a commit hook, so it
appears iff the processing transaction durably committed —
exactly what Exactly-Once Request-Processing quantifies over.
"""

from __future__ import annotations

import logging
import threading
import time as _time
from typing import Any, Callable

from repro.core.request import REPLY_FAILED, REPLY_OK, Reply, Request
from repro.errors import (
    DeadlockError,
    DiskCrashedError,
    QueueEmpty,
    StorageError,
    TransactionAborted,
    WalPanicError,
)
from repro.obs import NULL_SPAN, Observability, Span, get_observability
from repro.queueing.manager import QueueHandle, QueueManager
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.sim.trace import TraceRecorder
from repro.transaction.manager import Transaction
from repro.transaction.twophase import TwoPhaseCoordinator

logger = logging.getLogger(__name__)

#: handler(txn, request) -> reply body; raise to abort the attempt.
Handler = Callable[[Transaction, Request], Any]


class ServerStats:
    """Counters for benchmarks."""

    def __init__(self) -> None:
        self.processed = 0
        self.failed_replies = 0
        self.aborts = 0
        self.empty_polls = 0
        self.storage_errors = 0


class Server:
    """One server process on a request queue."""

    def __init__(
        self,
        name: str,
        request_qm: QueueManager,
        request_queue: str,
        handler: Handler,
        reply_qm: QueueManager | None = None,
        coordinator: TwoPhaseCoordinator | None = None,
        trace: TraceRecorder | None = None,
        injector: FaultInjector | None = None,
        selector: Callable[..., bool] | None = None,
        obs: Observability | None = None,
    ):
        self.name = name
        self.request_qm = request_qm
        self.request_queue = request_queue
        self.handler = handler
        #: where reply queues live; defaults to the request repository
        self.reply_qm = reply_qm if reply_qm is not None else request_qm
        self.coordinator = coordinator
        self.trace = trace
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.selector = selector
        self.stats = ServerStats()
        obs = obs if obs is not None else get_observability()
        self._obs_on = obs.enabled
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_committed = metrics.counter(
            "requests_committed_total",
            "requests whose processing transaction committed", ("server",),
        ).labels(server=name)
        self._m_failed = metrics.counter(
            "requests_failed_total",
            "committed requests that returned a failure reply", ("server",),
        ).labels(server=name)
        self._m_aborts = metrics.counter(
            "server_aborts_total", "processing attempts that aborted", ("server",)
        ).labels(server=name)
        self._m_empty_polls = metrics.counter(
            "server_empty_polls_total", "polls that found no request", ("server",)
        ).labels(server=name)
        self._m_storage_errors = metrics.counter(
            "server_storage_errors_total",
            "processing attempts aborted by storage errors", ("server",),
        ).labels(server=name)
        self._m_processing = metrics.histogram(
            "request_processing_seconds",
            "dequeue-to-commit processing time", ("server",),
        ).labels(server=name)
        self._distributed = self.reply_qm.repo is not self.request_qm.repo
        if self._distributed and coordinator is None:
            raise ValueError(
                "request and reply queues live in different repositories; "
                "a TwoPhaseCoordinator is required"
            )
        # Figure 5: Register(req_q, ap_id, FALSE) — servers don't need tags.
        self._h_in, _, _ = request_qm.register(request_queue, name, stable=False)
        self._reply_handles: dict[str, QueueHandle] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: the error that ended the last serve loop, if it was fatal
        self.last_fatal: BaseException | None = None

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------

    def process_one(self, block: bool = False, timeout: float | None = None) -> bool:
        """Process the next request.  Returns False when the queue had
        no eligible element.  Aborts propagate the causing exception
        after the transaction has rolled back (the request is back in
        the queue or moved to the error queue)."""
        if self._distributed:
            return self._process_one_2pc(block, timeout)
        try:
            with self.request_qm.repo.tm.transaction() as txn:
                done = self._attempt(txn, txn, block, timeout)
        except QueueEmpty:
            self.stats.empty_polls += 1
            self._m_empty_polls.inc()
            return False
        return done

    def _attempt(
        self,
        request_txn: Transaction,
        reply_txn: Transaction,
        block: bool,
        timeout: float | None,
    ) -> bool:
        element = self.request_qm.dequeue(
            self._h_in, txn=request_txn, block=block, timeout=timeout,
            selector=self.selector,
        )
        request = Request.from_body(element.body)
        rid = request.rid
        self.injector.reach("server.after_dequeue")
        if self.trace is not None:
            self.trace.record("request.attempt", rid, server=self.name)
        span = NULL_SPAN
        t0 = 0.0
        if self._obs_on:
            t0 = _time.perf_counter()
            # One span per processing *attempt*: a request that aborts
            # and is re-dequeued shows several, the last one committed.
            span = self._tracer.start_span(
                "server.process",
                trace_id=rid,
                parent=element.headers.get("trace"),
                server=self.name,
                eid=element.eid,
                attempt=element.abort_count + 1,
            )

        def record_abort() -> None:
            self.stats.aborts += 1
            self._m_aborts.inc()
            span.end("aborted")
            logger.debug("server %r: attempt on %s aborted", self.name, rid)
            if self.trace is not None:
                self.trace.record("request.attempt_aborted", rid, server=self.name)

        request_txn.on_abort(record_abort)
        # The handler's database work belongs to the REQUEST node's
        # transaction (application tables live beside the request
        # queue); only the reply enqueue uses the reply node's branch.
        with self._tracer.use_span(span):
            reply_body = self.handler(request_txn, request)
            self.injector.reach("server.after_process")
            reply = self._as_reply(rid, reply_body)
            self._enqueue_reply(reply_txn, request, reply, span)
        self.injector.reach("server.before_commit")

        def record_commit() -> None:
            self.stats.processed += 1
            self._m_committed.inc()
            if reply.status == REPLY_FAILED:
                self.stats.failed_replies += 1
                self._m_failed.inc()
            if self._obs_on:
                self._m_processing.observe(_time.perf_counter() - t0)
                span.annotate("txn.committed", status=reply.status)
            span.end("ok")
            self._trace_commit(rid, reply)

        request_txn.on_commit(record_commit)
        return True

    def _trace_commit(self, rid: str, reply: Reply) -> None:
        """Trace hook run when a processing transaction commits.
        Overridden by pipeline stage servers, whose intermediate
        commits are stage executions, not request executions."""
        if self.trace is not None:
            self.trace.record(
                "request.executed", rid, server=self.name, status=reply.status
            )
            self.trace.record("reply.enqueued", rid, server=self.name)

    @staticmethod
    def _as_reply(rid: str, reply_body: Any) -> Reply:
        if isinstance(reply_body, Reply):
            return Reply(rid=rid, body=reply_body.body, status=reply_body.status)
        return Reply(rid=rid, body=reply_body, status=REPLY_OK)

    def _enqueue_reply(
        self,
        txn: Transaction,
        request: Request,
        reply: Reply,
        span: Span = NULL_SPAN,
    ) -> None:
        handle = self._reply_handles.get(request.reply_to)
        if handle is None:
            handle, _, _ = self.reply_qm.register(
                request.reply_to, self.name, stable=False
            )
            self._reply_handles[request.reply_to] = handle
        headers = {"rid": reply.rid, "corr": request.rid}
        ctx = span.context()
        if ctx is not None:
            headers["trace"] = ctx
        self.reply_qm.enqueue(
            handle,
            reply.to_body(),
            txn=txn,
            headers=headers,
        )

    # ------------------------------------------------------------------
    # Distributed variant: request repo + reply repo under 2PC
    # ------------------------------------------------------------------

    def _process_one_2pc(self, block: bool, timeout: float | None) -> bool:
        request_tm = self.request_qm.repo.tm
        reply_tm = self.reply_qm.repo.tm
        request_txn = request_tm.begin()
        reply_txn = reply_tm.begin()
        try:
            self._attempt(request_txn, reply_txn, block, timeout)
        except QueueEmpty:
            request_tm.abort(request_txn, "empty")
            reply_tm.abort(reply_txn, "empty")
            self.stats.empty_polls += 1
            self._m_empty_polls.inc()
            return False
        except BaseException as exc:
            from repro.errors import SimulatedCrash

            if not isinstance(exc, SimulatedCrash):
                for tm, txn in ((request_tm, request_txn), (reply_tm, reply_txn)):
                    if not txn.status.terminal:
                        tm.abort(txn, "server failure")
            raise
        assert self.coordinator is not None
        decision = self.coordinator.commit(
            [(request_tm, request_txn), (reply_tm, reply_txn)]
        )
        return decision == "commit"

    # ------------------------------------------------------------------
    # Threaded operation (Figure 5's "While (true)" loop)
    # ------------------------------------------------------------------

    def serve_until(
        self,
        should_stop: Callable[[], bool],
        poll_timeout: float = 0.05,
        retry_on: tuple[type[BaseException], ...] = (DeadlockError, TransactionAborted),
    ) -> int:
        """Loop: process requests until ``should_stop()``.  Returns how
        many requests were processed.  ``retry_on`` exceptions abort
        the attempt and continue (the request went back to the queue).

        Storage errors surface as aborts, not wedged state: a transient
        :class:`StorageError` counts and continues (the attempt rolled
        back, the request is requeued); a :class:`WalPanicError` or
        :class:`DiskCrashedError` means the node's storage is unusable
        until restart recovery, so the loop stops and records the cause
        in :attr:`last_fatal` for the supervisor (chaos engine, test
        harness) to act on.
        """
        processed = 0
        self.last_fatal = None
        while not should_stop():
            try:
                if self.process_one(block=True, timeout=poll_timeout):
                    processed += 1
            except retry_on:
                continue
            except (WalPanicError, DiskCrashedError) as exc:
                self.stats.storage_errors += 1
                self._m_storage_errors.inc()
                self.last_fatal = exc
                logger.warning(
                    "server %r: storage unusable (%s); stopping until restart",
                    self.name, type(exc).__name__,
                )
                break
            except StorageError:
                self.stats.storage_errors += 1
                self._m_storage_errors.inc()
                continue
        return processed

    def start(self, poll_timeout: float = 0.05) -> None:
        """Run the serve loop in a daemon thread."""
        if self._thread is not None:
            raise RuntimeError(f"server {self.name!r} is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.serve_until,
            args=(self._stop.is_set, poll_timeout),
            daemon=True,
            name=f"server-{self.name}",
        )
        self._thread.start()

    def stop(self, join_timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=join_timeout)
        self._thread = None
