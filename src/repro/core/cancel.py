"""Request cancellation — Section 7.

Three levels, all built on the queue operation ``Kill_element``:

1. :meth:`~repro.core.clerk.Clerk.cancel_last_request` — the client
   operation "Cancel-last-request": the clerk invokes Kill_element on
   the eid of the last request (which it keeps, and which Register
   returns at recovery).
2. :class:`RequestCanceller` — cancellation by rid: locate the element
   in the request queue (or a pipeline's continuation queues) and kill
   it.  Works only while no transaction has committed for the request.
3. :class:`~repro.core.saga.Saga` — compensation once a
   multi-transaction prefix has committed.

:func:`cancel_last_request_after_recovery` reconstructs the
cancellable eid from the persistent registration, demonstrating
Section 7's "the clerk should maintain this eid, which is returned by
each Enqueue operation *and by Register when the client recovers from
a failure*."
"""

from __future__ import annotations

from repro.core.clerk import Clerk
from repro.core.system import TPSystem
from repro.errors import CancelFailed


class RequestCanceller:
    """Cancel single-transaction requests by rid."""

    def __init__(self, system: TPSystem, queue_names: list[str] | None = None):
        self.system = system
        self.queue_names = queue_names or [system.request_queue]

    def cancel(self, rid: str) -> bool:
        """Kill the request element carrying ``rid``.

        Returns True if cancelled; False if the request is no longer in
        any queue (a server consumed it — committed — or it never
        existed).  A request currently held by an *uncommitted*
        transaction is cancelled by aborting that transaction, per the
        Kill_element semantics."""
        repo = self.system.request_repo
        for qname in self.queue_names:
            queue = repo.get_queue(qname)
            # O(1) when the queue indexes "rid" (TPSystem's queues do).
            for eid in queue.find_by_header("rid", rid):
                if queue.kill_element(eid):
                    if self.system.trace is not None:
                        self.system.trace.record("request.cancelled", rid)
                    return True
        return False


def cancel_last_request_after_recovery(clerk: Clerk) -> bool:
    """Recover the last request's eid from the registration and cancel
    it (the client crashed after Send and wants the request gone).

    The clerk must be freshly connected (Connect repopulates the eid
    from the stable registration record)."""
    if clerk.last_request_eid is None:
        raise CancelFailed(
            f"client {clerk.client_id!r} has no recorded request to cancel"
        )
    return clerk.cancel_last_request()
