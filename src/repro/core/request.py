"""Requests, replies, and request ids.

A request (Section 2) is "a data structure (e.g., a record) that
describes some work that the system should perform".  The client
attaches a *request id* (rid) to each request (Section 3); rids are the
spine of the whole protocol: registration tags carry them, replies
quote them, and the guarantee checkers key on them.

Rid convention: ``"<client_id>#<sequence>"``.  The sequence number lets
a recovering client *reconstruct its internal state* — it parses the
last sent rid (returned by Connect) to learn how far through its work
list it got, which is exactly the paper's "at recovery time it
determines the last non-idempotent operation it executed ... and
reconstructs its internal state".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

REPLY_OK = "ok"
REPLY_FAILED = "failed"


def make_rid(client_id: str, sequence: int) -> str:
    """Build the rid for the ``sequence``-th request of ``client_id``."""
    if "#" in client_id:
        raise ValueError(f"client id must not contain '#': {client_id!r}")
    return f"{client_id}#{sequence}"


def rid_sequence(rid: str) -> int:
    """Recover the sequence number from a rid (client recovery)."""
    client, sep, seq = rid.rpartition("#")
    if not sep or not client:
        raise ValueError(f"malformed rid {rid!r}")
    return int(seq)


def rid_client(rid: str) -> str:
    client, sep, _seq = rid.rpartition("#")
    if not sep or not client:
        raise ValueError(f"malformed rid {rid!r}")
    return client


@dataclass
class Request:
    """A request as carried in a queue element body."""

    rid: str
    body: Any
    client_id: str
    #: name of the client's private reply queue (Section 5's
    #: multiple-clients extension: "passing that queue's name with the
    #: request, so the server knows where to Enqueue the reply")
    reply_to: str
    #: scratch pad (Section 9, IMS/DC): state carried between the
    #: transactions of a multi-transaction request (Section 6)
    scratch: dict[str, Any] = field(default_factory=dict)

    def to_body(self) -> dict[str, Any]:
        return {
            "rid": self.rid,
            "body": self.body,
            "client": self.client_id,
            "reply_to": self.reply_to,
            "scratch": dict(self.scratch),
        }

    @classmethod
    def from_body(cls, body: dict[str, Any]) -> "Request":
        return cls(
            rid=body["rid"],
            body=body["body"],
            client_id=body["client"],
            reply_to=body["reply_to"],
            scratch=dict(body.get("scratch", {})),
        )


@dataclass
class Reply:
    """A reply as carried in a queue element body.

    ``status == REPLY_FAILED`` is the paper's "reply that indicates
    that fact [an unsuccessful attempt]; the reply is a promise that it
    will not attempt to execute the request any more" — still
    exactly-once, just unsuccessfully."""

    rid: str
    body: Any
    status: str = REPLY_OK

    def to_body(self) -> dict[str, Any]:
        return {"rid": self.rid, "body": self.body, "status": self.status}

    @classmethod
    def from_body(cls, body: dict[str, Any]) -> "Reply":
        return cls(rid=body["rid"], body=body["body"], status=body["status"])

    @property
    def ok(self) -> bool:
        return self.status == REPLY_OK
