"""Compensation for committed multi-transaction prefixes — Section 7.

"With multi-transaction requests, the cancellation request fails once
the first transaction in the sequence has committed.  Later
cancellation can still be arranged by supporting compensating
transactions and sagas [Garcia and Salem 87] ...  one cancels the
request by compensating for the committed transactions that executed
on behalf of the request.  This can be done by executing the
compensations as a serial multi-transaction request."

A :class:`Saga` pairs each pipeline stage with a compensating handler.
Cancellation reads the pipeline's progress table (which stage
transactions committed for the rid), kills any still-queued
continuation element, and runs the compensations in reverse order —
each compensation is itself a transaction, and each records its own
completion so a crash mid-compensation resumes instead of
double-compensating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.multitxn import MultiTransactionPipeline
from repro.errors import CancelFailed
from repro.transaction.manager import Transaction

#: compensation handler: (txn, rid) -> None; undoes one stage's effects.
Compensation = Callable[[Transaction, str], None]


@dataclass
class CancellationOutcome:
    """What cancelling a request required."""

    rid: str
    #: the request never started: its queue element was killed
    killed_in_queue: bool
    #: stage indexes whose committed effects were compensated (reverse order)
    compensated_stages: list[int]

    @property
    def was_noop(self) -> bool:
        return not self.killed_in_queue and not self.compensated_stages


class Saga:
    """Compensation plan for one pipeline."""

    def __init__(
        self,
        pipeline: MultiTransactionPipeline,
        compensations: list[Compensation],
    ):
        if len(compensations) != len(pipeline.stages):
            raise ValueError(
                f"need one compensation per stage: "
                f"{len(pipeline.stages)} stages, {len(compensations)} compensations"
            )
        self.pipeline = pipeline
        self.compensations = list(compensations)
        #: durable record of which stages have been compensated per rid
        self.compensation_log = pipeline.system.table(
            f"{pipeline.name}.compensations"
        )

    # ------------------------------------------------------------------
    # Cancellation entry point
    # ------------------------------------------------------------------

    def cancel(self, rid: str) -> CancellationOutcome:
        """Cancel request ``rid`` wherever it currently is.

        1. Try Kill_element on the request/continuation element in each
           pipeline queue (cheapest: nothing committed yet for that
           hop).
        2. Compensate, in reverse order, every stage the progress table
           shows as committed and not yet compensated.

        Raises :class:`CancelFailed` if the request already produced
        its final reply (stage N committed): the paper's model has no
        way to claw back a delivered reply — the *user* must initiate a
        new, explicitly compensating request at that point.
        """
        system = self.pipeline.system
        with system.request_repo.tm.transaction() as txn:
            done = self.pipeline.completed_stages(txn, rid)
        if len(done) == len(self.pipeline.stages):
            raise CancelFailed(
                f"request {rid!r} already completed all "
                f"{len(self.pipeline.stages)} stages; its reply is out"
            )

        killed = self._kill_queued_element(rid)
        compensated = self._compensate_committed(rid, done)
        if system.trace is not None:
            system.trace.record(
                "request.cancelled",
                rid,
                killed=killed,
                compensated=list(compensated),
            )
        return CancellationOutcome(rid, killed, compensated)

    def _kill_queued_element(self, rid: str) -> bool:
        """Find and kill the rid's element in whichever pipeline queue
        holds it (request queue or a continuation queue)."""
        repo = self.pipeline.system.request_repo
        queue_names = [self.pipeline.system.request_queue] + self.pipeline.queue_names
        for qname in queue_names:
            queue = repo.get_queue(qname)
            for eid in queue.find_by_header("rid", rid):
                if queue.kill_element(eid):
                    return True
        return False

    def _compensate_committed(self, rid: str, done: list[int]) -> list[int]:
        """Run compensations for committed stages, newest first, each in
        its own transaction, skipping stages already compensated."""
        system = self.pipeline.system
        compensated: list[int] = []
        for stage_index in sorted(done, reverse=True):
            key = f"comp/{rid}/{stage_index}"
            with system.request_repo.tm.transaction() as txn:
                if self.compensation_log.get(txn, key):
                    continue  # crash-resume: already compensated
                self.compensations[stage_index](txn, rid)
                self.compensation_log.put(txn, key, True)
            compensated.append(stage_index)
        return compensated

    def compensated_stages(self, rid: str) -> list[int]:
        with self.pipeline.system.request_repo.tm.transaction() as txn:
            out = []
            for stage_index in range(len(self.pipeline.stages)):
                if self.compensation_log.get(txn, f"comp/{rid}/{stage_index}"):
                    out.append(stage_index)
            return out
