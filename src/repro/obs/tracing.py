"""Lightweight span tracing with request-id correlation.

A *span* covers one timed operation (a clerk Send, a queue Dequeue, a
server processing transaction); spans carrying the same ``trace_id``
belong to one logical request.  The stack uses the paper's request id
(*rid*) as the trace id, so a single request's lifetime — including
aborted attempts and error-queue trips — can be reconstructed with
:meth:`SpanTracer.timeline`.

Context propagates two ways:

* **in-process** — ``with tracer.start_span(...)`` pushes the span on a
  thread-local stack; nested ``start_span`` calls parent to it
  automatically (the clerk's Send span becomes the parent of the queue
  manager's Enqueue span with no plumbing).
* **across the queue** — :meth:`Span.context` returns a small dict the
  sender stores in the element's headers; the consumer passes it back
  as ``parent=`` (or :meth:`Span.adopt_context`), which stitches the
  server's processing span to the client's Send span even though they
  run in different threads, transactions, or (after a crash) processes.

The no-op mode (:data:`NULL_TRACER` / :data:`NULL_SPAN`) makes every
operation a cheap no-op so disabled tracing stays out of the hot path.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, ContextManager, Iterator

#: wire-context keys (element headers)
CTX_TRACE = "trace_id"
CTX_SPAN = "span_id"


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start", "end_time", "status", "attrs", "events",
    )

    def __init__(
        self,
        tracer: "SpanTracer | None",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None = None,
        start: float | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.time() if start is None else start
        self.end_time: float | None = None
        self.status = "open"
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.events: list[tuple[float, str, dict[str, Any]]] = []

    # -- lifecycle ---------------------------------------------------------

    def annotate(self, event: str, **attrs: Any) -> None:
        """Attach a timestamped point event to this span."""
        self.events.append((time.time(), event, attrs))

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def end(self, status: str = "ok") -> None:
        """Finish the span (idempotent: the first end wins)."""
        if self.end_time is None:
            self.end_time = time.time()
            self.status = status

    @property
    def duration(self) -> float | None:
        return None if self.end_time is None else self.end_time - self.start

    # -- context propagation -----------------------------------------------

    def context(self) -> dict[str, str]:
        """Wire context to store in element headers for the consumer."""
        return {CTX_TRACE: self.trace_id, CTX_SPAN: self.span_id}

    def adopt_context(self, ctx: dict[str, str] | None) -> None:
        """Re-parent this span onto a wire context discovered after the
        span started (a Dequeue learns the element's trace only once an
        element has been selected)."""
        if ctx and CTX_TRACE in ctx:
            self.trace_id = ctx[CTX_TRACE]
            self.parent_id = ctx.get(CTX_SPAN)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        if self.tracer is not None:
            self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.tracer is not None:
            self.tracer._pop(self)
        self.end("error" if exc_type is not None else "ok")

    # -- export -----------------------------------------------------------

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end_time,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [
                {"ts": ts, "name": name, "attrs": attrs}
                for ts, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, trace={self.trace_id!r}, "
            f"id={self.span_id}, status={self.status})"
        )


class SpanTracer:
    """Collects spans; thread-safe; bounded."""

    enabled = True

    def __init__(self, max_spans: int = 100_000):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._seq = 0
        self._max_spans = max_spans
        self._local = threading.local()

    # -- creation ---------------------------------------------------------

    def start_span(
        self,
        name: str,
        trace_id: str | None = None,
        parent: "Span | dict[str, str] | None" = None,
        start: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Start (and record) a span.

        ``parent`` may be a live :class:`Span`, a wire context dict from
        :meth:`Span.context`, or ``None`` — in which case the calling
        thread's current span (if any) is the parent.
        """
        parent_id: str | None = None
        if parent is None:
            parent = self.current_span()
        if isinstance(parent, Span):
            parent_id = parent.span_id
            if trace_id is None:
                trace_id = parent.trace_id
        elif isinstance(parent, dict):
            parent_id = parent.get(CTX_SPAN)
            if trace_id is None:
                trace_id = parent.get(CTX_TRACE)
        with self._lock:
            self._seq += 1
            span_id = f"s{self._seq}"
            if trace_id is None:
                trace_id = f"trace-{self._seq}"
            span = Span(self, name, trace_id, span_id, parent_id, start, attrs)
            self._spans.append(span)
            if len(self._spans) > self._max_spans:
                del self._spans[: self._max_spans // 2]
        return span

    def event(
        self,
        name: str,
        trace_id: str | None = None,
        parent: "Span | dict[str, str] | None" = None,
        **attrs: Any,
    ) -> Span:
        """Record an instantaneous event as a zero-duration span."""
        span = self.start_span(name, trace_id=trace_id, parent=parent, **attrs)
        span.end_time = span.start
        span.status = "event"
        return span

    # -- thread-local current span ---------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextlib.contextmanager
    def _use_span_cm(self, span: Span):
        self._push(span)
        try:
            yield span
        finally:
            self._pop(span)

    def use_span(self, span: Span) -> ContextManager[Span]:
        """Make ``span`` the calling thread's current span for the
        ``with`` block *without* ending it on exit — for spans whose end
        is decided elsewhere (e.g. a server span ended by the processing
        transaction's commit/abort hook)."""
        return self._use_span_cm(span)

    # -- queries -----------------------------------------------------------

    def spans(self, trace_id: str | None = None, name: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._spans)
        return [
            s
            for s in spans
            if (trace_id is None or s.trace_id == trace_id)
            and (name is None or s.name == name)
        ]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        with self._lock:
            return iter(list(self._spans))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- reconstruction -----------------------------------------------------

    def timeline(self, trace_id: str) -> str:
        """Human-readable lifetime of one request id.

        Spans sorted by start time, indented by parent depth, with
        point events inline — e.g. a request that aborted once shows
        two ``server.process`` spans, the first ``status=aborted``.
        """
        spans = sorted(self.spans(trace_id), key=lambda s: (s.start, s.span_id))
        if not spans:
            return f"(no spans for trace {trace_id!r})"
        by_id = {s.span_id: s for s in spans}

        def depth(span: Span) -> int:
            d, seen = 0, set()
            while span.parent_id in by_id and span.parent_id not in seen:
                seen.add(span.parent_id)
                span = by_id[span.parent_id]
                d += 1
            return d

        t0 = spans[0].start
        lines = [f"trace {trace_id}"]
        for span in spans:
            pad = "  " * depth(span)
            offset = (span.start - t0) * 1000.0
            took = "…" if span.duration is None else f"{span.duration * 1000.0:.3f}ms"
            attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            lines.append(
                f"  {offset:9.3f}ms {pad}{span.name} [{span.status}] {took}"
                + (f" {attrs}" if attrs else "")
            )
            for ts, event, eattrs in span.events:
                eoffset = (ts - t0) * 1000.0
                extra = " ".join(f"{k}={v}" for k, v in sorted(eattrs.items()))
                lines.append(
                    f"  {eoffset:9.3f}ms {pad}  • {event}" + (f" {extra}" if extra else "")
                )
        return "\n".join(lines)

    def to_records(self, trace_id: str | None = None) -> list[dict[str, Any]]:
        return [s.to_record() for s in self.spans(trace_id)]


# ----------------------------------------------------------------------
# No-op mode
# ----------------------------------------------------------------------

class NullSpan(Span):
    """Shared do-nothing span for disabled tracing."""

    def __init__(self) -> None:
        super().__init__(None, "null", "null", "null", start=0.0)

    def annotate(self, event: str, **attrs: Any) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def end(self, status: str = "ok") -> None:
        pass

    def context(self) -> dict[str, str] | None:  # type: ignore[override]
        return None

    def adopt_context(self, ctx: dict[str, str] | None) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer(SpanTracer):
    """Disabled tracer: hands out :data:`NULL_SPAN`, records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=1)

    def start_span(self, name, trace_id=None, parent=None, start=None, **attrs):  # type: ignore[override]
        return NULL_SPAN

    def event(self, name, trace_id=None, parent=None, **attrs):  # type: ignore[override]
        return NULL_SPAN

    def current_span(self) -> Span | None:
        return None

    def use_span(self, span: Span) -> ContextManager[Span]:  # type: ignore[override]
        return contextlib.nullcontext(NULL_SPAN)


NULL_TRACER = NullTracer()
