"""Black-box flight recorder: a bounded ring of recent structured events.

Metrics aggregate and spans need a live request id; neither answers the
post-mortem question "what were the last things this node did before it
panicked?".  The flight recorder does: instrumented components append
small structured events (transaction state transitions, WAL forces and
panics, 2PC decisions, injected disk faults, crash points hit) to a
bounded, thread-safe ring buffer, and failure paths dump the ring as
JSONL — automatically on :class:`~repro.errors.WalPanicError`,
:class:`~repro.errors.TwoPhaseInDoubtError`, and chaos
:class:`~repro.chaos.guarantees.GuaranteeChecker` violations, where the
dump is attached to the shrunken counterexample report.

Events are dicts with three reserved keys — ``seq`` (monotonic, the
deterministic ordering under seeded schedules), ``ts`` (wall clock,
informational), ``kind`` (dotted event name, e.g. ``wal.force``) — plus
whatever fields the caller passed.

Dumping is opt-in: :meth:`FlightRecorder.auto_dump` writes nothing
until :attr:`FlightRecorder.auto_dump_dir` is set (the chaos engine and
tests point it at their artifact directory), so ordinary runs never
litter the working directory.

The disabled bundle hands out :data:`NULL_FLIGHT`, whose ``record`` is
a no-op taking only keyword arguments it never touches.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any

#: default ring capacity — enough for a few thousand pipeline events,
#: small enough that a dump stays readable
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Bounded, thread-safe ring buffer of structured events."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, name: str = "flight",
                 auto_dump_dir: str | None = None):
        if capacity <= 0:
            raise ValueError("flight-recorder capacity must be positive")
        self.capacity = capacity
        self.name = name
        #: directory auto-dumps land in; ``None`` disables auto-dumping
        self.auto_dump_dir = auto_dump_dir
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._dumps = 0
        #: paths of every dump written, in order (counterexample reports
        #: reference the latest)
        self.dump_paths: list[str] = []

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, /, **fields: Any) -> None:
        """Append one event; drops the oldest event when full.  The
        event kind is positional-only so ``kind=...`` stays usable as an
        ordinary field name (e.g. ``disk.fault`` events carry the fault
        kind)."""
        with self._lock:
            self._seq += 1
            if len(self._ring) == self.capacity:
                self._dropped += 1
            # Reserved keys win over same-named fields: the event kind
            # must never be masked by a payload field.
            self._ring.append({**fields, "seq": self._seq,
                               "ts": time.time(), "kind": kind})

    def events(self) -> list[dict[str, Any]]:
        """Copies of the buffered events, oldest first."""
        with self._lock:
            return [dict(event) for event in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound since the last clear."""
        return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    # -- dumping -----------------------------------------------------------

    def dump(self, path: str, reason: str = "manual") -> str:
        """Write the ring as JSONL: a header line (recorder metadata and
        the dump reason), then one event per line, oldest first."""
        with self._lock:
            events = [dict(event) for event in self._ring]
            header = {
                "flight": self.name,
                "reason": reason,
                "ts": time.time(),
                "events": len(events),
                "dropped": self._dropped,
                "capacity": self.capacity,
            }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True, default=str) + "\n")
            for event in events:
                fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        with self._lock:
            self.dump_paths.append(path)
        return path

    def auto_dump(self, reason: str) -> str | None:
        """Dump into :attr:`auto_dump_dir` (``None`` → no-op).  The file
        name carries the reason and a per-recorder counter, so repeated
        failures in one process never overwrite each other."""
        directory = self.auto_dump_dir
        if directory is None:
            return None
        with self._lock:
            self._dumps += 1
            count = self._dumps
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
        path = os.path.join(directory, f"{self.name}-{count:03d}-{safe}.jsonl")
        try:
            return self.dump(path, reason=reason)
        except OSError:
            # A failing dump must never mask the failure being dumped.
            return None

    @property
    def last_dump_path(self) -> str | None:
        with self._lock:
            return self.dump_paths[-1] if self.dump_paths else None


class NullFlightRecorder(FlightRecorder):
    """Disabled recorder: records nothing, dumps nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, name="null")

    def record(self, kind: str, /, **fields: Any) -> None:
        pass

    def dump(self, path: str, reason: str = "manual") -> str:
        return path

    def auto_dump(self, reason: str) -> str | None:
        return None


NULL_FLIGHT = NullFlightRecorder()


def read_flight_dump(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a flight dump: ``(header, events)``.  Tolerates dumps with
    no header line (every line an event) for hand-built fixtures."""
    header: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for index, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if index == 0 and "flight" in doc and "kind" not in doc:
                header = doc
            else:
                events.append(doc)
    return header, events
