"""Latency-attribution reports: ``python -m repro.obs.report``.

Turns a metrics snapshot (the JSON document written by
:func:`repro.obs.export.write_metrics_json`, e.g. by
``benchmarks/run_bench.py --profile``) into a human-readable breakdown
of where commit-pipeline time went: lock waits, WAL append and force,
group-commit leader/follower waits, 2PC rounds, checkpoint stalls,
queue age, and recovery progress.  Optionally tails a flight-recorder
dump (:func:`repro.obs.flight.read_flight_dump`) next to the numbers,
so one command shows *what* was slow and *what happened last*.

Usage::

    python -m repro.obs.report METRICS.json
    python -m repro.obs.report METRICS.json --flight DUMP.jsonl --tail 20
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, IO

from repro.obs.flight import read_flight_dump

#: the commit-pipeline phases, in pipeline order: (label, metric name,
#: label filter applied to each series' labels, concurrency-control
#: lane the phase belongs to — "2pl" / "det" for lane-specific phases,
#: "any" for machinery both lanes share)
PIPELINE_PHASES: tuple[tuple[str, str, dict[str, str], str], ...] = (
    ("lock wait", "lock_wait_seconds", {}, "2pl"),
    ("det plan wait (intent)", "det_plan_wait_seconds", {}, "det"),
    ("queue select (dequeue scan)", "queue_select_seconds", {}, "any"),
    ("WAL append (buffer)", "wal_append_seconds", {}, "any"),
    ("WAL force (flush)", "wal_force_seconds", {}, "any"),
    ("group-commit wait (leader)",
     "wal_group_commit_wait_seconds", {"role": "leader"}, "any"),
    ("group-commit wait (follower)",
     "wal_group_commit_wait_seconds", {"role": "follower"}, "any"),
    ("2PC prepare", "twophase_prepare_seconds", {}, "2pl"),
    ("2PC decision force", "twophase_decide_seconds", {}, "2pl"),
    ("2PC round-trip (end-to-end)", "twophase_commit_seconds", {}, "2pl"),
    ("checkpoint stall", "checkpoint_stall_seconds", {}, "any"),
)

#: the denominator for the "share" column
TOTAL_METRIC = "txn_duration_seconds"


def load_metrics(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _series(snapshot: dict[str, Any], name: str,
            match: dict[str, str]) -> list[dict[str, Any]]:
    family = snapshot.get(name)
    if not family:
        return []
    return [
        s for s in family.get("series", [])
        if all(s.get("labels", {}).get(k) == v for k, v in match.items())
    ]


def _merge(series: list[dict[str, Any]]) -> dict[str, float]:
    """Aggregate histogram series: counts and sums add; p95 and max take
    the worst series (a conservative merge — exact quantiles cannot be
    recovered from pre-bucketed series)."""
    out = {"count": 0.0, "sum": 0.0, "p95": 0.0, "max": 0.0}
    for entry in series:
        out["count"] += entry.get("count", 0)
        out["sum"] += entry.get("sum", 0.0)
        out["p95"] = max(out["p95"], entry.get("p95", 0.0))
        out["max"] = max(out["max"], entry.get("max", 0.0))
    return out


def _fmt_seconds(value: float) -> str:
    if value == 0:
        return "0"
    if value < 0.001:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _rule(out: IO[str], title: str) -> None:
    out.write(f"\n{title}\n{'-' * len(title)}\n")


def render_attribution(snapshot: dict[str, Any], out: IO[str]) -> None:
    """The per-phase breakdown of commit-pipeline time."""
    total = _merge(_series(snapshot, TOTAL_METRIC, {}))
    _rule(out, "Commit-pipeline latency attribution")
    header = (f"{'phase':<30} {'lane':>5} {'count':>9} {'total':>10} "
              f"{'mean':>9} {'p95':>9} {'share':>7}")
    out.write(header + "\n")
    for label, metric, match, lane in PIPELINE_PHASES:
        merged = _merge(_series(snapshot, metric, match))
        if merged["count"] == 0:
            continue
        mean = merged["sum"] / merged["count"]
        share = (f"{100.0 * merged['sum'] / total['sum']:.1f}%"
                 if total["sum"] > 0 else "-")
        out.write(
            f"{label:<30} {lane:>5} {int(merged['count']):>9} "
            f"{_fmt_seconds(merged['sum']):>10} {_fmt_seconds(mean):>9} "
            f"{_fmt_seconds(merged['p95']):>9} {share:>7}\n"
        )
    if total["count"]:
        mean = total["sum"] / total["count"]
        out.write(
            f"{'transaction total':<30} {'any':>5} {int(total['count']):>9} "
            f"{_fmt_seconds(total['sum']):>10} {_fmt_seconds(mean):>9} "
            f"{_fmt_seconds(total['p95']):>9} {'100.0%':>7}\n"
        )
        out.write("(share = phase time / total transaction time; phases "
                  "overlap — e.g. the\n WAL force happens inside the "
                  "group-commit leader wait — so shares do not sum "
                  "to 100%)\n")
    else:
        out.write("(no txn_duration_seconds series: per-phase shares "
                  "unavailable)\n")


def render_lanes(snapshot: dict[str, Any], out: IO[str]) -> None:
    """Transactions per concurrency-control lane, plus deterministic
    plan-batch shape when the lane ran."""
    lanes = _series(snapshot, "txn_lane_total", {})
    if not lanes:
        return
    _rule(out, "Concurrency-control lanes")
    out.write(f"{'node':<20} {'lane':<15} {'txns':>9}\n")
    for entry in sorted(
        lanes,
        key=lambda s: (s.get("labels", {}).get("node", "?"),
                       s.get("labels", {}).get("lane", "?")),
    ):
        if not entry.get("value"):
            continue
        labels = entry.get("labels", {})
        out.write(f"{labels.get('node', '?'):<20} "
                  f"{labels.get('lane', '?'):<15} "
                  f"{int(entry.get('value', 0)):>9}\n")
    batches = _merge(_series(snapshot, "det_plan_batch_size", {}))
    if batches["count"]:
        mean = batches["sum"] / batches["count"]
        out.write(f"deterministic plan batches: {int(batches['count'])} "
                  f"(mean size {mean:.1f}, max {batches['max']:.0f})\n")


def render_queue_age(snapshot: dict[str, Any], out: IO[str]) -> None:
    family = snapshot.get("queue_age_seconds")
    if not family or not family.get("series"):
        return
    _rule(out, "Queue age (visible -> dequeued)")
    out.write(f"{'queue':<30} {'count':>9} {'mean':>9} {'p95':>9} "
              f"{'max':>9}\n")
    for entry in family["series"]:
        if not entry.get("count"):
            continue
        name = entry.get("labels", {}).get("queue", "?")
        mean = entry["sum"] / entry["count"]
        out.write(
            f"{name:<30} {int(entry['count']):>9} "
            f"{_fmt_seconds(mean):>9} {_fmt_seconds(entry.get('p95', 0)):>9} "
            f"{_fmt_seconds(entry.get('max', 0)):>9}\n"
        )


def render_network(snapshot: dict[str, Any], out: IO[str]) -> None:
    """Wire-level cost of the TCP deployment: driver/gateway RPC
    round-trips, bytes moved, and the gateway's admission outcomes."""
    rpc = _series(snapshot, "rpc_client_seconds", {})
    gw_rpc = _series(snapshot, "gateway_rpc_seconds", {})
    admissions = _series(snapshot, "gateway_requests_total", {})
    if not rpc and not gw_rpc and not admissions:
        return
    _rule(out, "Network (TCP deployment)")
    if rpc or gw_rpc:
        out.write(f"{'caller':<20} {'shard':>6} {'calls':>9} {'mean':>9} "
                  f"{'p95':>9} {'max':>9}\n")
        for label, series in (("driver", rpc), ("gateway", gw_rpc)):
            for entry in sorted(
                series, key=lambda s: s.get("labels", {}).get("shard", "?")
            ):
                if not entry.get("count"):
                    continue
                mean = entry["sum"] / entry["count"]
                out.write(
                    f"{label:<20} "
                    f"{entry.get('labels', {}).get('shard', '?'):>6} "
                    f"{int(entry['count']):>9} {_fmt_seconds(mean):>9} "
                    f"{_fmt_seconds(entry.get('p95', 0)):>9} "
                    f"{_fmt_seconds(entry.get('max', 0)):>9}\n"
                )
    bytes_series = _series(snapshot, "rpc_client_bytes_total", {})
    if bytes_series:
        totals: dict[str, float] = {}
        for entry in bytes_series:
            direction = entry.get("labels", {}).get("direction", "?")
            totals[direction] = totals.get(direction, 0.0) + entry.get("value", 0)
        summary = ", ".join(
            f"{direction}={int(total):,}"
            for direction, total in sorted(totals.items())
        )
        out.write(f"wire bytes: {summary}\n")
    if admissions:
        outcomes: dict[str, float] = {}
        for entry in admissions:
            outcome = entry.get("labels", {}).get("outcome", "?")
            outcomes[outcome] = outcomes.get(outcome, 0.0) + entry.get("value", 0)
        admitted = outcomes.get("admitted", 0)
        busy = sum(v for k, v in outcomes.items() if k.startswith("busy"))
        out.write(
            f"gateway admissions: admitted={int(admitted)} "
            f"busy={int(busy)}"
        )
        detail = ", ".join(
            f"{k}={int(v)}" for k, v in sorted(outcomes.items())
            if k.startswith("busy") and v
        )
        out.write(f" ({detail})\n" if detail else "\n")


def render_recovery(snapshot: dict[str, Any], out: IO[str]) -> None:
    runs = _series(snapshot, "recovery_runs_total", {})
    if not runs:
        return
    records = {tuple(sorted(s["labels"].items())): s.get("value", 0)
               for s in _series(snapshot, "recovery_replayed_records_total", {})}
    replayed = {tuple(sorted(s["labels"].items())): s.get("value", 0)
                for s in _series(snapshot, "recovery_replayed_bytes_total", {})}
    durations = {tuple(sorted(s["labels"].items())): s
                 for s in _series(snapshot, "recovery_duration_seconds", {})}
    _rule(out, "Recovery")
    out.write(f"{'repo':<30} {'runs':>6} {'records':>9} {'bytes':>10} "
              f"{'time(sum)':>10}\n")
    for entry in runs:
        key = tuple(sorted(entry["labels"].items()))
        duration = durations.get(key, {})
        out.write(
            f"{entry['labels'].get('repo', '?'):<30} "
            f"{int(entry.get('value', 0)):>6} "
            f"{int(records.get(key, 0)):>9} {int(replayed.get(key, 0)):>10} "
            f"{_fmt_seconds(duration.get('sum', 0.0)):>10}\n"
        )
    modes = _series(snapshot, "recovery_mode_total", {})
    if modes:
        summary = ", ".join(
            f"{s['labels'].get('mode', '?')}={int(s.get('value', 0))}"
            for s in modes if s.get("value")
        )
        if summary:
            out.write(f"modes: {summary}\n")


def render_flight(path: str, tail: int, out: IO[str]) -> None:
    header, events = read_flight_dump(path)
    _rule(out, f"Flight recorder: {header.get('flight', path)} "
               f"(reason: {header.get('reason', '?')})")
    shown = events[-tail:] if tail else events
    if len(events) > len(shown):
        out.write(f"... {len(events) - len(shown)} earlier events "
                  "omitted ...\n")
    for event in shown:
        detail = " ".join(
            f"{k}={v}" for k, v in sorted(event.items())
            if k not in ("seq", "ts", "kind") and v is not None
        )
        out.write(f"{event.get('seq', '?'):>6}  "
                  f"{event.get('kind', '?'):<20} {detail}\n")


def render_report(snapshot: dict[str, Any], out: IO[str],
                  flight_path: str | None = None, tail: int = 20) -> None:
    render_attribution(snapshot, out)
    render_lanes(snapshot, out)
    render_queue_age(snapshot, out)
    render_network(snapshot, out)
    render_recovery(snapshot, out)
    if flight_path is not None:
        render_flight(flight_path, tail, out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a latency-attribution report from a metrics "
                    "snapshot (and optionally a flight-recorder dump).",
    )
    parser.add_argument("metrics", help="metrics snapshot JSON "
                        "(write_metrics_json / run_bench.py --profile)")
    parser.add_argument("--flight", default=None,
                        help="flight-recorder JSONL dump to tail")
    parser.add_argument("--tail", type=int, default=20,
                        help="flight events to show (default 20; 0 = all)")
    args = parser.parse_args(argv)
    try:
        snapshot = load_metrics(args.metrics)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics snapshot: {exc}", file=sys.stderr)
        return 2
    try:
        render_report(snapshot, sys.stdout, flight_path=args.flight,
                      tail=args.tail)
    except BrokenPipeError:
        # reader (e.g. ``| head``) went away — not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
