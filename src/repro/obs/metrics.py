"""Thread-safe metrics primitives: Counter, Gauge, Histogram.

Gray's "Queues Are Databases" (PAPERS.md) argues that queue depth,
dequeue latency, and retry counts are exactly the signals an operator
of a queued-transaction system lives on.  This module provides the
primitives the rest of the stack is instrumented with:

* :class:`Counter` — monotonically increasing count (``_total`` names).
* :class:`Gauge` — a value that goes up and down (queue depth, pool
  size); supports callback gauges whose value is sampled lazily at
  snapshot time so the hot path pays nothing.
* :class:`Histogram` — fixed-bucket latency distribution with
  p50/p95/p99 summaries estimated by linear interpolation inside the
  owning bucket (clamped to the observed min/max).

Every metric may declare *label names*; :meth:`_Metric.labels` returns
the child for one label-value combination (created on first use).  All
mutating operations are thread-safe.

The **no-op mode** mirrors every class with a ``Null*`` singleton whose
methods do nothing: a disabled registry hands those out, so
instrumented code caches metric objects once and the disabled hot path
costs a single no-op method call.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from time import perf_counter
from typing import Any, Callable, Iterable

#: Default latency buckets (seconds): 50µs .. 5s, roughly logarithmic.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class MetricError(ValueError):
    """Bad metric declaration or use (type/label mismatch, re-registration)."""


class _Metric:
    """Base: a named metric family with zero or more labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[Any, ...], Any] = {}

    def labels(self, **labelvalues: Any):
        """Child metric for one label-value combination (get-or-create)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(labelvalues[n] for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _own_child(self):
        """The implicit unlabeled child (for metrics with no labelnames)."""
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; use .labels(...)"
            )
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._children[()] = self._new_child()
            return child

    def children(self) -> dict[tuple[Any, ...], Any]:
        with self._lock:
            return dict(self._children)

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [],
        }
        for key, child in sorted(
            self.children().items(), key=lambda kv: tuple(map(str, kv[0]))
        ):
            entry = {"labels": dict(zip(self.labelnames, key))}
            entry.update(child.snapshot())
            out["series"].append(entry)
        return out


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Counter(_Metric):
    """Monotonically increasing counter."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._own_child().inc(amount)

    @property
    def value(self) -> float:
        return self._own_child().value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        """Sample ``fn`` lazily at read time instead of storing a value
        (e.g. ``queue.depth`` — the hot path then pays nothing)."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return float("nan")
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._own_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._own_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._own_child().dec(amount)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        self._own_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._own_child().value


class _Timer:
    """``with histogram.time():`` — observes the elapsed seconds on exit.

    The exception path observes too: a commit that fails after waiting
    on a lock still spent that time in the phase being attributed.
    """

    __slots__ = ("_child", "_start")

    def __init__(self, child: "_HistogramChild") -> None:
        self._child = child
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._child.observe(perf_counter() - self._start)
        return False


class _HistogramChild:
    __slots__ = ("_lock", "_edges", "_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._edges = edges
        # one bucket per edge (observation <= edge), plus overflow (+Inf)
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def time(self) -> _Timer:
        """Context manager observing the elapsed wall time on exit."""
        return _Timer(self)

    def observe(self, value: float) -> None:
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q < 1) from the buckets.

        Linear interpolation inside the owning bucket, clamped to the
        observed min/max so single-observation histograms are exact.
        """
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            counts = list(self._counts)
            lo, hi = self._min, self._max
        target = q * count
        cumulative = 0.0
        for index, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lower = self._edges[index - 1] if index > 0 else 0.0
                upper = self._edges[index] if index < len(self._edges) else hi
                fraction = (target - cumulative) / n
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo), hi)
            cumulative += n
        return hi

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            count, total = self._count, self._sum
            counts = list(self._counts)
            lo, hi = self._min, self._max
        out: dict[str, Any] = {
            "count": count,
            "sum": total,
            "buckets": {
                **{str(edge): c for edge, c in zip(self._edges, counts)},
                "+Inf": counts[-1],
            },
        }
        if count:
            out.update(
                min=lo,
                max=hi,
                mean=total / count,
                p50=self.quantile(0.50),
                p95=self.quantile(0.95),
                p99=self.quantile(0.99),
            )
        return out


class Histogram(_Metric):
    """Fixed-bucket distribution with percentile summaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        edges = tuple(sorted(buckets))
        if not edges:
            raise MetricError(f"{name}: histogram needs at least one bucket")
        self.buckets = edges

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._own_child().observe(value)

    def time(self) -> _Timer:
        return self._own_child().time()

    @property
    def count(self) -> int:
        return self._own_child().count

    @property
    def sum(self) -> float:
        return self._own_child().sum

    def quantile(self, q: float) -> float:
        return self._own_child().quantile(q)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class MetricsRegistry:
    """Named metrics for one process; get-or-create by (name, kind).

    Re-requesting an existing name with the same kind and labelnames
    returns the existing metric (so independent components can share a
    family); a kind or labelname clash raises :class:`MetricError`.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready snapshot of every metric family."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}

    def reset(self) -> None:
        """Drop all metrics (tests / fresh benchmark runs)."""
        with self._lock:
            self._metrics.clear()

    # Rendering lives in repro.obs.export; these are conveniences.

    def render_prometheus(self) -> str:
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def render_dashboard(self) -> str:
        from repro.obs.export import render_dashboard

        return render_dashboard(self)


# ----------------------------------------------------------------------
# No-op mode
# ----------------------------------------------------------------------

class _NullTimer:
    """Shared, stateless no-op timer: the disabled ``time()`` path hands
    out this one instance, so it allocates nothing per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullMetric:
    """Does nothing, cheaply; stands in for every metric kind."""

    kind = "null"
    name = "null"
    help = ""
    labelnames: tuple[str, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def labels(self, **labelvalues: Any) -> "NullMetric":
        return self

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float] | None) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict[str, Any]:
        return {}


#: Shared no-op metric: cache it like a real one, pay one no-op call.
NULL_METRIC = NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every factory returns :data:`NULL_METRIC`."""

    enabled = False

    def counter(self, name, help="", labelnames=()):  # type: ignore[override]
        return NULL_METRIC

    def gauge(self, name, help="", labelnames=()):  # type: ignore[override]
        return NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {}


NULL_REGISTRY = NullMetricsRegistry()
