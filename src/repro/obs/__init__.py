"""repro.obs — metrics and span tracing for the recoverable-queue stack.

One :class:`Observability` object bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.SpanTracer`.  Every instrumented component
(clerk, queue manager, queues, transaction manager, WAL, server,
scheduler) takes an optional ``obs`` argument and falls back to the
process-global default, which starts **disabled**: the disabled bundle
hands out shared no-op metric/span singletons, so an uninstrumented run
pays one boolean check (or one no-op call) per hook.

Enabling, per system::

    from repro.obs import Observability
    obs = Observability()                       # enabled
    system = TPSystem(obs=obs)
    ...
    print(obs.metrics.render_dashboard())
    print(obs.tracer.timeline(rid))

or globally (before building any components)::

    from repro import obs
    obs.set_observability(obs.Observability())

See ``docs/observability.md`` for the metric catalog.
"""

from __future__ import annotations

from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    NullMetric,
    NullMetricsRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanTracer,
)


class Observability:
    """A metrics registry + span tracer + flight recorder bundle with
    one enabled flag."""

    def __init__(
        self,
        enabled: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        flight: FlightRecorder | None = None,
    ):
        self.enabled = enabled
        if enabled:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else SpanTracer()
            self.flight = flight if flight is not None else FlightRecorder()
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER
            # A black-box flight recorder may ride on a disabled bundle:
            # failure-path events (WAL panics, 2PC in-doubt, injected
            # faults) record unconditionally, and that is exactly the
            # configuration a metrics-off production run wants.
            self.flight = flight if flight is not None else NULL_FLIGHT

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    def reset(self) -> None:
        """Drop all recorded metrics, spans, and flight events."""
        self.metrics.reset()
        self.tracer.clear()
        self.flight.clear()


#: The process-global default, used by components built without an
#: explicit ``obs``.  Disabled out of the box.
NULL_OBS = Observability.disabled()
_current: Observability = NULL_OBS


def get_observability() -> Observability:
    """The current process-global Observability."""
    return _current


def set_observability(obs: Observability | None) -> Observability:
    """Install ``obs`` as the process-global default (``None`` restores
    the disabled default).  Components cache their metric handles at
    construction, so set this *before* building systems.  Returns the
    installed bundle."""
    global _current
    _current = obs if obs is not None else NULL_OBS
    return _current


__all__ = [
    "Observability",
    "get_observability",
    "set_observability",
    "NULL_OBS",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "NullMetric",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
]
