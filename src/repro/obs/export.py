"""Exporters: JSONL event sink, Prometheus text, dashboard summary.

Three views over the same registry/tracer:

* :class:`JsonlSink` / :func:`write_spans_jsonl` /
  :func:`write_metrics_json` — machine-readable files for trajectory
  tooling (``BENCH_*.json`` runs, offline span analysis).
* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / labeled samples), so a scrape endpoint is
  one ``web.write(render_prometheus(reg))`` away.
* :func:`render_dashboard` — a human-readable operator summary: every
  counter/gauge, and p50/p95/p99 per histogram.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer


class JsonlSink:
    """Append-only JSON-lines sink (thread-safe).

    Accepts a path or any text file object; one ``write(event_dict)``
    per line.  Used for span dumps and incremental metric events.
    """

    def __init__(self, target: str | IO[str]):
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def write(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._fh.write(line + "\n")

    def write_many(self, events: list[dict[str, Any]]) -> None:
        for event in events:
            self.write(event)

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_spans_jsonl(tracer: SpanTracer, target: str | IO[str],
                      trace_id: str | None = None) -> int:
    """Dump spans (optionally one trace) as JSONL; returns span count."""
    records = tracer.to_records(trace_id)
    with JsonlSink(target) as sink:
        sink.write_many(records)
    return len(records)


def write_metrics_json(registry: MetricsRegistry, target: str | IO[str]) -> None:
    """Dump a registry snapshot as one pretty-printed JSON document."""
    snapshot = registry.snapshot()
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
    else:
        json.dump(snapshot, target, indent=2, sort_keys=True, default=str)
        target.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value: Any) -> str:
    """Prometheus text-format label-value escaping: backslash, double
    quote, and line feed must be escaped (in that order — escaping the
    backslash first keeps the other two escapes unambiguous)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, Any], extra: dict[str, Any] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text-format snapshot of the registry."""
    lines: list[str] = []
    for name, family in registry.snapshot().items():
        kind = family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_format_labels(labels)} {series['value']}")
            elif kind == "histogram":
                cumulative = 0
                for edge, count in series["buckets"].items():
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_format_labels(labels, {'le': edge})} {cumulative}"
                    )
                lines.append(f"{name}_sum{_format_labels(labels)} {series['sum']}")
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable dashboard
# ----------------------------------------------------------------------

def render_dashboard(registry: MetricsRegistry) -> str:
    """Operator summary: counters/gauges as totals, histograms with
    count/mean/p50/p95/p99."""
    snapshot = registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    sections = {"counter": [], "gauge": [], "histogram": []}  # type: dict[str, list[str]]
    for name, family in snapshot.items():
        kind = family["kind"]
        rows = sections.get(kind)
        if rows is None:
            continue
        # Multi-series counter/gauge families get a family-total line so
        # an operator reads the aggregate (e.g. WAL flushes across all
        # shards) without summing label permutations by hand.
        if kind in ("counter", "gauge") and len(family["series"]) > 1:
            total = sum(series["value"] for series in family["series"])
            shown = int(total) if float(total).is_integer() else round(total, 3)
            rows.append(
                f"  {name} (total of {len(family['series'])} series): {shown}"
            )
        for series in family["series"]:
            label = _format_labels(series["labels"])
            if kind == "histogram":
                if series["count"] == 0:
                    continue
                if name.endswith("_seconds"):
                    scale, unit, digits = 1000, "ms", 3
                else:  # unit-less histogram (e.g. batch sizes)
                    scale, unit, digits = 1, "", 1
                rows.append(
                    f"  {name}{label}: count={series['count']} "
                    f"mean={series['mean'] * scale:.{digits}f}{unit} "
                    f"p50={series['p50'] * scale:.{digits}f}{unit} "
                    f"p95={series['p95'] * scale:.{digits}f}{unit} "
                    f"p99={series['p99'] * scale:.{digits}f}{unit}"
                )
            else:
                value = series["value"]
                shown = int(value) if float(value).is_integer() else value
                rows.append(f"  {name}{label}: {shown}")
    lines = ["== metrics dashboard =="]
    for kind, title in (
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "histograms"),
    ):
        if sections[kind]:
            lines.append(f"{title}:")
            lines.extend(sections[kind])
    return "\n".join(lines)
