"""A remote queue-manager proxy — Section 5's deployment assumption.

"If the QM is remote from the client, then we assume that the clerk
invokes QM operations using remote procedure call [Birrell and
Nelson 84]."

:class:`RemoteQueueManager` exposes the :class:`~repro.queueing.manager.
QueueManager` surface the clerk uses, forwarding each operation over an
:class:`~repro.comm.rpc.RpcChannel`.  The transport is at-least-once
(lost messages are retried), so duplicate *deliveries* of an operation
are possible; the queue manager absorbs them:

* **Register** is naturally idempotent (re-register returns the same
  state);
* **tagged Enqueue** is deduplicated by the registration's last tag
  (rids are unique, so an equal tag is the same logical Send);
* **Dequeue** retries can double-dequeue; the clerk's Receive is
  called once per reply and the blocking dequeue is invoked through a
  single call whose *response* may be retried — the channel returns the
  first response and duplicates carry the identical element.

The proxy deliberately only covers the clerk-facing operations; servers
are co-located with their queues (the paper's back-end assumption).
"""

from __future__ import annotations

from typing import Any

from repro.comm.rpc import RpcChannel
from repro.errors import NotRegisteredError
from repro.queueing.element import Element
from repro.queueing.manager import QueueHandle, QueueManager


class RemoteQueueManager:
    """Clerk-side stub for a queue manager living across the network.

    Duck-type compatible with :class:`QueueManager` for every operation
    the clerk performs (register, deregister, enqueue, dequeue, read,
    kill_element) — a :class:`~repro.core.clerk.Clerk` works unchanged
    with one of these as its ``request_qm`` / ``reply_qm``.
    """

    def __init__(self, channel: RpcChannel, qm: QueueManager):
        self.channel = channel
        self._qm = qm  # the remote object (held by the far endpoint)

    # The clerk occasionally consults qm.repo for test plumbing; expose
    # the remote repository reference the same way the real QM does.
    @property
    def repo(self):
        return self._qm.repo

    # -- forwarded operations ------------------------------------------------

    def register(
        self, qname: str, registrant: str, stable: bool = True, txn=None
    ) -> tuple[QueueHandle, Any, int | None]:
        return self.channel.call(
            lambda: self._qm.register(qname, registrant, stable=stable, txn=txn)
        )

    def deregister(self, handle: QueueHandle, txn=None) -> None:
        # Absorb the duplicate-delivery case: a retried Deregister whose
        # first attempt succeeded (response lost) finds the registration
        # already gone — for a destroy operation that IS success.
        def destroy():
            try:
                self._qm.deregister(handle, txn=txn)
            except NotRegisteredError:
                pass

        return self.channel.call(destroy)

    def enqueue(self, handle: QueueHandle, body: Any, tag: Any = None, **kwargs) -> int:
        return self.channel.call(
            lambda: self._qm.enqueue(handle, body, tag=tag, **kwargs)
        )

    def dequeue(self, handle: QueueHandle, tag: Any = None, **kwargs) -> Element:
        return self.channel.call(
            lambda: self._qm.dequeue(handle, tag=tag, **kwargs)
        )

    def registration_info(self, handle: QueueHandle):
        return self.channel.call(lambda: self._qm.registration_info(handle))

    def read(self, handle: QueueHandle, eid: int) -> Element:
        return self.channel.call(lambda: self._qm.read(handle, eid))

    def kill_element(self, handle: QueueHandle, eid: int) -> bool:
        return self.channel.call(lambda: self._qm.kill_element(handle, eid))

    def depth(self, qname: str) -> int:
        return self.channel.call(lambda: self._qm.depth(qname))
