"""A remote queue-manager proxy — Section 5's deployment assumption.

"If the QM is remote from the client, then we assume that the clerk
invokes QM operations using remote procedure call [Birrell and
Nelson 84]."

:class:`RemoteQueueManager` exposes the :class:`~repro.queueing.manager.
QueueManager` surface the clerk uses, forwarding each operation over
any :class:`~repro.comm.transport.Transport` — the simulated network
in chaos runs, a real TCP socket in the deployed topology — as *data*
payloads (``{"op": ..., ...}`` dicts of codec types), dispatched by a
:class:`QueueManagerService` at the far end.  The transport is
at-least-once (lost messages/replies are retried), so duplicate
*deliveries* of an operation are possible; the queue manager absorbs
them:

* **Register** is naturally idempotent (re-register returns the same
  state);
* **tagged Enqueue** is deduplicated by the registration's last tag
  (rids are unique, so an equal tag is the same logical Send);
* **Dequeue** retries can double-dequeue; the clerk's resynchronization
  (Figure 2) recovers via the tag — the paper's whole point;
* **Deregister** retries find the registration already gone; for a
  destroy operation that *is* success, absorbed server-side.

The proxy deliberately only covers the clerk-facing auto-commit
operations; servers are co-located with their queues (the paper's
back-end assumption), and the sharded TCP deployment has its own
transactional stubs in :mod:`repro.serve.client`.
"""

from __future__ import annotations

from typing import Any

from repro.comm.transport import Transport
from repro.comm.wire import error_payload, ok_payload, unwrap
from repro.errors import NotRegisteredError, ReproError
from repro.queueing.element import Element
from repro.queueing.manager import QueueHandle, QueueManager
from repro.queueing.registration import Registration

#: slack added to a blocking dequeue's wire timeout so the transport
#: outwaits the server-side block before declaring the call lost
_BLOCK_SLACK = 5.0
#: wire timeout for a block-forever dequeue (the retry re-enters the
#: same blocking wait, so this only bounds one attempt)
_BLOCK_FOREVER = 3600.0


def handle_record(handle: QueueHandle) -> dict[str, str]:
    return {
        "repository": handle.repository,
        "queue": handle.queue,
        "registrant": handle.registrant,
    }


def handle_from_record(record: dict[str, str]) -> QueueHandle:
    return QueueHandle(
        record["repository"], record["queue"], record["registrant"]
    )


class QueueManagerService:
    """Server-side dispatcher: executes queue operations named by wire
    payloads against a local :class:`QueueManager`.

    ``qm`` is rebindable — after a crash/restart the supervisor (or the
    chaos engine) points the service at the recovered queue manager and
    in-flight client retries land on the new incarnation, exactly as a
    reconnecting RPC stub would.

    Only :class:`~repro.errors.ReproError` is converted into an error
    envelope; anything else (notably injected
    :class:`~repro.errors.SimulatedCrash` faults) propagates to the
    caller of :meth:`handle` — over the synchronous in-proc medium that
    is the sender's stack, preserving the chaos engine's crash
    propagation.
    """

    def __init__(self, qm: QueueManager | None):
        self.qm = qm
        self.handled = 0

    def handle(self, payload: Any) -> dict[str, Any]:
        self.handled += 1
        try:
            return ok_payload(self._dispatch(payload))
        except ReproError as exc:
            return error_payload(exc)

    def _resolve_txn(self, payload: dict[str, Any]) -> Any:
        """Transaction named in the payload, if any.  The base service
        is auto-commit only; :class:`repro.serve.service.ShardService`
        overrides this to resolve branch ids from its transaction
        table."""
        if payload.get("txn") is not None:
            raise ReproError(
                "transactional calls require a shard service"
            )
        return None

    def _dispatch(self, payload: dict[str, Any]) -> Any:
        qm = self.qm
        op = payload["op"]
        if op == "register":
            handle, tag, eid = qm.register(
                payload["queue"], payload["registrant"],
                stable=payload.get("stable", True),
            )
            return {"handle": handle_record(handle), "tag": tag, "eid": eid}
        if op == "deregister":
            try:
                qm.deregister(handle_from_record(payload["handle"]))
            except NotRegisteredError:
                # Duplicate delivery: the first attempt already
                # deregistered and only its reply was lost.
                pass
            return None
        if op == "enqueue":
            return qm.enqueue(
                handle_from_record(payload["handle"]),
                payload["body"],
                tag=payload.get("tag"),
                txn=self._resolve_txn(payload),
                priority=payload.get("priority", 0),
                headers=payload.get("headers"),
            )
        if op == "dequeue":
            element = qm.dequeue(
                handle_from_record(payload["handle"]),
                tag=payload.get("tag"),
                error_queue=payload.get("error_queue"),
                txn=self._resolve_txn(payload),
                block=payload.get("block", False),
                timeout=payload.get("timeout"),
            )
            return element.to_record()
        if op == "registration_info":
            reg = qm.registration_info(handle_from_record(payload["handle"]))
            return None if reg is None else reg.to_record()
        if op == "read":
            return qm.read(
                handle_from_record(payload["handle"]), payload["eid"]
            ).to_record()
        if op == "kill_element":
            return qm.kill_element(
                handle_from_record(payload["handle"]), payload["eid"]
            )
        if op == "depth":
            return qm.depth(payload["queue"])
        raise ReproError(f"unknown queue-manager operation {op!r}")


class RemoteQueueManager:
    """Clerk-side stub for a queue manager living across the network.

    Duck-type compatible with :class:`QueueManager` for every operation
    the clerk performs (register, deregister, enqueue, dequeue, read,
    kill_element) — a :class:`~repro.core.clerk.Clerk` works unchanged
    with one of these as its ``request_qm`` / ``reply_qm``.

    All operations are auto-commit (``txn`` must be ``None``): the
    clerk's Sends and Receives each run in their own server-side
    transaction, per Figure 3.
    """

    def __init__(self, transport: Transport):
        self.transport = transport

    def _call(self, payload: dict[str, Any],
              timeout: float | None = None) -> Any:
        return unwrap(self.transport.request(payload, timeout=timeout))

    @staticmethod
    def _no_txn(txn: Any) -> None:
        if txn is not None:
            raise ReproError(
                "RemoteQueueManager operations are auto-commit; "
                "transactional branches use repro.serve.client stubs"
            )

    # -- forwarded operations ------------------------------------------------

    def register(
        self, qname: str, registrant: str, stable: bool = True, txn=None
    ) -> tuple[QueueHandle, Any, int | None]:
        self._no_txn(txn)
        result = self._call(
            {"op": "register", "queue": qname, "registrant": registrant,
             "stable": stable}
        )
        return (
            handle_from_record(result["handle"]), result["tag"], result["eid"]
        )

    def deregister(self, handle: QueueHandle, txn=None) -> None:
        self._no_txn(txn)
        self._call({"op": "deregister", "handle": handle_record(handle)})

    def enqueue(
        self,
        handle: QueueHandle,
        body: Any,
        tag: Any = None,
        *,
        txn=None,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        self._no_txn(txn)
        return self._call(
            {"op": "enqueue", "handle": handle_record(handle), "body": body,
             "tag": tag, "priority": priority, "headers": headers}
        )

    def dequeue(
        self,
        handle: QueueHandle,
        tag: Any = None,
        error_queue: str | None = None,
        *,
        txn=None,
        block: bool = False,
        timeout: float | None = None,
        selector=None,
    ) -> Element:
        self._no_txn(txn)
        if selector is not None:
            raise ReproError("selectors cannot cross the wire")
        wire_timeout = None
        if block:
            wire_timeout = (
                timeout if timeout is not None else _BLOCK_FOREVER
            ) + _BLOCK_SLACK
        record = self._call(
            {"op": "dequeue", "handle": handle_record(handle), "tag": tag,
             "error_queue": error_queue, "block": block, "timeout": timeout},
            timeout=wire_timeout,
        )
        return Element.from_record(record)

    def registration_info(self, handle: QueueHandle) -> Registration | None:
        record = self._call(
            {"op": "registration_info", "handle": handle_record(handle)}
        )
        return None if record is None else Registration.from_record(record)

    def read(self, handle: QueueHandle, eid: int) -> Element:
        record = self._call(
            {"op": "read", "handle": handle_record(handle), "eid": eid}
        )
        return Element.from_record(record)

    def kill_element(self, handle: QueueHandle, eid: int) -> bool:
        return self._call(
            {"op": "kill_element", "handle": handle_record(handle),
             "eid": eid}
        )

    def depth(self, qname: str) -> int:
        return self._call({"op": "depth", "queue": qname})
