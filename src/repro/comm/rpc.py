"""Remote procedure call and one-way messaging over the simulated
network.

Benchmark C8 compares Section 5's Send variants by *message count*:

* RPC Send — request message + acknowledgement = 2 messages;
* one-way Send — 1 message, may be lost ("If the Enqueue fails, the
  client will time out waiting for its Receive to dequeue the reply and
  can determine what happened when it reconnects");
* Transceive — the Send's acknowledgement is the reply itself, saving
  the explicit ack.

An :class:`RpcChannel` wraps a server-side dispatch function; the
remote side is addressed by endpoint name.  Calls retry on lost
messages up to ``max_retries`` (RPC semantics need at-least-once
transport; the *queue operations* being invoked are what make the end
result exactly-once — that is the paper's whole point).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.comm.network import SimNetwork
from repro.errors import MessageLost, RpcTimeout


class RpcChannel:
    """Request/response calls between two endpoints."""

    def __init__(
        self,
        network: SimNetwork,
        local: str,
        remote: str,
        max_retries: int = 10,
    ):
        self.network = network
        self.local = local
        self.remote = remote
        self.max_retries = max_retries
        self._response: list[Any] = []
        network.register(local, self._on_response)
        self.calls = 0
        self.retries = 0

    def _on_response(self, payload: Any) -> None:
        self._response.append(payload)

    def call(self, fn: Callable[[], Any]) -> Any:
        """Invoke ``fn`` at the remote endpoint and return its result.

        Two messages per successful call (request + response); lost
        messages are retried — note the retries make the *transport*
        at-least-once, so ``fn`` itself must be idempotent or, as in
        the paper, a tagged queue operation whose duplicate is
        harmless."""
        self.calls += 1
        for attempt in range(self.max_retries + 1):
            self._response.clear()
            try:
                self.network.send(
                    self.local,
                    self.remote,
                    ("call", fn, self.local),
                    reliable=True,
                )
            except MessageLost:
                self.retries += 1
                continue
            if self._response:
                # Duplicated delivery may stack two identical responses;
                # RPC returns the first.
                return self._response[0]
            self.retries += 1
        raise RpcTimeout(
            f"no response from {self.remote!r} after {self.max_retries} retries"
        )

    def post(self, fn: Callable[[], Any]) -> None:
        """One-way message: fire and forget (1 message, possibly lost)."""
        try:
            self.network.send(self.local, self.remote, ("post", fn, self.local))
        except MessageLost:  # pragma: no cover - send() drops silently
            pass


class RpcServer:
    """Server-side dispatcher: executes received closures and responds
    to calls."""

    def __init__(self, network: SimNetwork, name: str):
        self.network = network
        self.name = name
        network.register(name, self._on_message)
        self.handled = 0

    def _on_message(self, payload: Any) -> None:
        kind, fn, reply_to = payload
        self.handled += 1
        result = fn()
        if kind == "call":
            try:
                self.network.send(self.name, reply_to, result, reliable=True)
            except MessageLost:
                # The response is lost; the caller retries the whole call.
                pass


class OneWayTransport:
    """Adapter giving the clerk a ``post(deliver)`` transport for
    :meth:`~repro.core.clerk.Clerk.send_oneway` (Section 5)."""

    def __init__(self, network: SimNetwork, local: str, remote: str):
        self.network = network
        self.local = local
        self.remote = remote

    def post(self, deliver: Callable[[], None]) -> None:
        try:
            self.network.send(self.local, self.remote, ("post", deliver, self.local))
        except MessageLost:  # pragma: no cover - send() drops silently
            pass
