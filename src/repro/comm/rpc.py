"""Remote procedure call and one-way messaging over the simulated
network.

Benchmark C8 compares Section 5's Send variants by *message count*:

* RPC Send — request message + acknowledgement = 2 messages;
* one-way Send — 1 message, may be lost ("If the Enqueue fails, the
  client will time out waiting for its Receive to dequeue the reply and
  can determine what happened when it reconnects");
* Transceive — the Send's acknowledgement is the reply itself, saving
  the explicit ack.

An :class:`RpcChannel` wraps a server-side dispatch function; the
remote side is addressed by endpoint name.  Calls retry on lost
messages up to ``max_retries`` (RPC semantics need at-least-once
transport; the *queue operations* being invoked are what make the end
result exactly-once — that is the paper's whole point).

Concurrency and correlation: every call carries a channel-unique call
id, echoed back in the response, so concurrent calls over one channel
(several clerk threads sharing a connection) each receive exactly
*their* result — a late or duplicated response for another call (or for
an earlier attempt of a completed call) is discarded.  Retries back off
exponentially with seeded jitter (deterministic per channel seed), so a
storm of callers against a lossy or partitioned network spreads out
instead of hammering in lockstep.
"""

from __future__ import annotations

import time as _time  # noqa: F401 - patched by tests to observe backoff sleeps
from typing import Any, Callable

from repro.comm.network import SimNetwork
from repro.comm.transport import InProcTransport
from repro.errors import MessageLost, PartitionedError


class RpcChannel(InProcTransport):
    """Request/response calls between two endpoints.

    Thread-safe: any number of threads may :meth:`call` concurrently.
    The correlation/retry engine lives in
    :class:`~repro.comm.transport.CorrelatedChannel` (this class is its
    closure-payload flavour; :class:`~repro.comm.transport.
    InProcTransport` is the data-payload flavour real wires can speak).

    Parameters
    ----------
    max_retries:
        Additional attempts after the first (so ``max_retries + 1``
        sends at most).
    backoff_base, backoff_factor, backoff_max:
        Sleep before retry ``n`` is ``base * factor**n`` capped at
        ``max``, scaled by a jitter factor in ``[0.5, 1.0)`` drawn from
        a :class:`random.Random` seeded with ``seed``.  The default
        base keeps worst-case test/benchmark retry storms cheap while
        still de-synchronising concurrent callers; pass ``0.0`` for the
        old immediate-retry behaviour.
    """

    def call(self, fn: Callable[[], Any]) -> Any:
        """Invoke ``fn`` at the remote endpoint and return its result.

        Two messages per successful call (request + response); lost
        messages are retried — note the retries make the *transport*
        at-least-once, so ``fn`` itself must be idempotent or, as in
        the paper, a tagged queue operation whose duplicate is
        harmless."""
        return self.request(fn)

    def post(self, fn: Callable[[], Any]) -> None:
        """One-way message: fire and forget (1 message, possibly lost)."""
        try:
            self.network.send(self.local, self.remote, ("post", fn, self.local))
        except MessageLost:  # pragma: no cover - send() drops silently
            pass


class RpcServer:
    """Server-side dispatcher: executes received closures and responds
    to calls."""

    def __init__(self, network: SimNetwork, name: str):
        self.network = network
        self.name = name
        network.register(name, self._on_message)
        self.handled = 0

    def _on_message(self, payload: Any) -> None:
        kind = payload[0]
        self.handled += 1
        if kind == "call":
            _, call_id, fn, reply_to = payload
            result = fn()
            try:
                self.network.send(
                    self.name, reply_to, ("resp", call_id, result), reliable=True
                )
            except (MessageLost, PartitionedError):
                # The response is lost; the caller retries the whole call.
                pass
        else:  # "post": one-way, no response
            _, fn, _reply_to = payload
            fn()


class OneWayTransport:
    """Adapter giving the clerk a ``post(deliver)`` transport for
    :meth:`~repro.core.clerk.Clerk.send_oneway` (Section 5)."""

    def __init__(self, network: SimNetwork, local: str, remote: str):
        self.network = network
        self.local = local
        self.remote = remote

    def post(self, deliver: Callable[[], None]) -> None:
        try:
            self.network.send(self.local, self.remote, ("post", deliver, self.local))
        except MessageLost:  # pragma: no cover - send() drops silently
            pass
