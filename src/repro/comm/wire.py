"""The wire protocol: CRC'd, length-prefixed frames of codec payloads.

The in-process transports pass Python objects by reference; a real
socket needs bytes.  A frame reuses the storage layer's framing idea
(:mod:`repro.storage.codec` records behind a length + CRC header, the
same shape as a WAL record) so a torn TCP stream fails the same way a
torn log tail does — loudly, at the CRC check, never by silently
decoding garbage::

    +--------+-----+-------+-----------+----------+===========+
    | magic  | ver | flags | length u32| crc32 u32|   body    |
    | "RQ"   | u8  | u8    | of body   | of body  | codec ... |
    +--------+-----+-------+-----------+----------+===========+

The body is one codec-encoded list ``[kind, call_id, payload]``:

* ``kind`` — ``"call"`` or ``"resp"``;
* ``call_id`` — the per-connection correlation id echoed back in the
  response, so concurrent calls multiplexed over one socket each get
  exactly their own result;
* ``payload`` — the operation (or its result), limited to codec types.

Frames above ``max_frame`` bytes are rejected *before* allocating the
body (a 4-byte length must not make the peer allocate 4 GiB), and any
header/CRC mismatch raises :class:`FrameError` — the connection is then
unusable and must be closed, because stream framing cannot resynchronize
after corruption.

Results and errors cross the wire as ``{"ok": value}`` /
``{"err": class_name, "msg": ...}`` envelopes; :func:`raise_remote`
rebuilds the exception from the :mod:`repro.errors` taxonomy so remote
callers see the very same classes in-proc callers do.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from repro import errors as _errors
from repro.errors import CommError, ReproError, TransactionAborted
from repro.storage.codec import CodecError, decode, encode

MAGIC = b"RQ"
VERSION = 1
#: default ceiling for one frame's body (oversized payload rejection)
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">2sBBII")
HEADER_SIZE = _HEADER.size

KIND_CALL = "call"
KIND_RESP = "resp"


class FrameError(CommError):
    """The byte stream does not contain a well-formed frame (bad magic,
    bad CRC, oversized body, or a truncated header mid-stream)."""


def encode_frame(kind: str, call_id: int, payload: Any,
                 max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame for ``payload``; raises
    :class:`~repro.storage.codec.CodecError` for non-codec types and
    :class:`FrameError` for bodies over ``max_frame`` (fail at the
    sender, where the error is actionable — the receiver would just
    drop the connection)."""
    body = encode([kind, call_id, payload])
    if len(body) > max_frame:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    header = _HEADER.pack(MAGIC, VERSION, 0, len(body), zlib.crc32(body))
    return header + body


class FrameReader:
    """Incremental frame decoder for one connection's byte stream.

    Feed it received chunks; it yields complete ``(kind, call_id,
    payload)`` triples and keeps partial frames buffered until the rest
    arrives.  Any framing violation raises :class:`FrameError`; the
    caller must drop the connection (the stream cannot be re-synced).
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buf = bytearray()

    def feed(self, data: bytes) -> Iterator[tuple[str, int, Any]]:
        self._buf.extend(data)
        while True:
            if len(self._buf) < HEADER_SIZE:
                return
            magic, version, _flags, length, crc = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise FrameError(f"bad frame magic {bytes(magic)!r}")
            if version != VERSION:
                raise FrameError(f"unsupported wire version {version}")
            if length > self.max_frame:
                raise FrameError(
                    f"frame body of {length} bytes exceeds the "
                    f"{self.max_frame}-byte limit"
                )
            if len(self._buf) < HEADER_SIZE + length:
                return  # partial frame: wait for more bytes
            body = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            if zlib.crc32(body) != crc:
                raise FrameError("frame body failed its CRC check")
            try:
                kind, call_id, payload = decode(body)
            except (CodecError, ValueError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            yield kind, call_id, payload


# ---------------------------------------------------------------------------
# Result / error envelopes
# ---------------------------------------------------------------------------

#: every exception class of the repro taxonomy, by name — the registry
#: that lets an error cross the wire and re-raise as the same class
_ERROR_CLASSES: dict[str, type[BaseException]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type)
    and issubclass(obj, BaseException)
    and not issubclass(obj, _errors.SimulatedCrash)
}


def ok_payload(value: Any) -> dict[str, Any]:
    return {"ok": value}


def error_payload(exc: BaseException) -> dict[str, Any]:
    """Envelope for a :class:`~repro.errors.ReproError` crossing the wire."""
    payload: dict[str, Any] = {"err": type(exc).__name__, "msg": str(exc)}
    if isinstance(exc, TransactionAborted):
        payload["reason"] = exc.reason
    return payload


def raise_remote(payload: dict[str, Any]) -> None:
    """Re-raise the error carried in an ``{"err": ...}`` envelope as its
    original :mod:`repro.errors` class (or :class:`ReproError` if the
    name is unknown to this build)."""
    name, message = payload["err"], payload.get("msg", "")
    cls = _ERROR_CLASSES.get(name)
    if cls is None:
        raise ReproError(f"remote {name}: {message}")
    if cls is TransactionAborted or issubclass(cls, TransactionAborted):
        raise TransactionAborted(None, payload.get("reason", message))
    raise cls(message)


def unwrap(payload: Any) -> Any:
    """Return the value of an ``ok`` envelope, re-raising ``err`` ones."""
    if isinstance(payload, dict):
        if "err" in payload:
            raise_remote(payload)
        if "ok" in payload:
            return payload["ok"]
    raise FrameError(f"malformed response envelope: {payload!r}")
