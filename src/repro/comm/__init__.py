"""Communication substrate: a lossy, partitionable message network,
a transport abstraction over it, and a real TCP wire.

The paper's protocols assume only that the clerk can invoke queue
operations remotely ("we assume that the clerk invokes QM operations
using remote procedure call [Birrell and Nelson 84]") and that
messages may be lost — indeed losing a request or reply in transit is
the opening failure scenario of Section 2.  This package provides:

* :class:`~repro.comm.network.SimNetwork` — named endpoints, seeded
  random message loss, duplication, and partitions, with message
  counters used by benchmark C8 (RPC vs one-way Send vs Transceive).
* :class:`~repro.comm.transport.Transport` — the correlated
  request/response interface, with two media behind it:
  :class:`~repro.comm.transport.InProcTransport` (the simulated
  network, byte-identical to the legacy channel behaviour) and
  :class:`~repro.comm.transport.TcpTransport` (a real socket speaking
  the CRC'd length-prefixed frames of :mod:`repro.comm.wire`).
* :class:`~repro.comm.rpc.RpcChannel` — the legacy closure-payload
  flavour of the same engine, kept for benchmark C8's message-count
  comparisons; and one-way posts (one message) over the network.
"""

from repro.comm.network import SimNetwork, NetworkStats
from repro.comm.rpc import RpcChannel, OneWayTransport
from repro.comm.transport import (
    NO_RESPONSE,
    InProcListener,
    InProcTransport,
    TcpListener,
    TcpTransport,
    Transport,
)
from repro.comm.wire import (
    DEFAULT_MAX_FRAME,
    FrameError,
    FrameReader,
    encode_frame,
    error_payload,
    ok_payload,
    raise_remote,
    unwrap,
)

__all__ = [
    "SimNetwork",
    "NetworkStats",
    "RpcChannel",
    "OneWayTransport",
    "Transport",
    "InProcTransport",
    "InProcListener",
    "TcpTransport",
    "TcpListener",
    "NO_RESPONSE",
    "FrameError",
    "FrameReader",
    "encode_frame",
    "DEFAULT_MAX_FRAME",
    "ok_payload",
    "error_payload",
    "raise_remote",
    "unwrap",
]
