"""Communication substrate: a lossy, partitionable message network and
an RPC layer over it.

The paper's protocols assume only that the clerk can invoke queue
operations remotely ("we assume that the clerk invokes QM operations
using remote procedure call [Birrell and Nelson 84]") and that
messages may be lost — indeed losing a request or reply in transit is
the opening failure scenario of Section 2.  This package provides:

* :class:`~repro.comm.network.SimNetwork` — named endpoints, seeded
  random message loss, duplication, and partitions, with message
  counters used by benchmark C8 (RPC vs one-way Send vs Transceive).
* :class:`~repro.comm.rpc.RpcChannel` — request/response calls (two
  messages) and one-way posts (one message) over the network.
"""

from repro.comm.network import SimNetwork, NetworkStats
from repro.comm.rpc import RpcChannel, OneWayTransport

__all__ = ["SimNetwork", "NetworkStats", "RpcChannel", "OneWayTransport"]
