"""A deterministic lossy network.

Endpoints are named; a message is a Python callable delivered to an
endpoint's handler (this is a simulation substrate, not a wire
protocol).  Failures are seeded-random and therefore reproducible:

* **loss** — each message is dropped with probability ``loss_rate``;
* **duplication** — delivered twice with probability ``dup_rate``
  (exercises the idempotence side of the protocols);
* **partitions** — endpoints in different partition groups cannot
  exchange messages at all (Section 1's "client and server nodes are
  frequently partitioned by communication failures").

Delivery is synchronous by default (the caller's thread runs the
handler), which keeps single-threaded tests deterministic; a
``mailbox`` mode queues messages for explicit pumping, letting tests
interleave delivery with crashes.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import MessageLost, PartitionedError


@dataclass
class NetworkStats:
    """Counters for benchmark C8."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    blocked_by_partition: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "blocked_by_partition": self.blocked_by_partition,
        }


@dataclass
class _Endpoint:
    name: str
    handler: Callable[[Any], Any]
    mailbox: deque = field(default_factory=deque)
    buffered: bool = False


class SimNetwork:
    """Named endpoints with seeded failures."""

    def __init__(self, seed: int = 0, loss_rate: float = 0.0, dup_rate: float = 0.0):
        self._rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.dup_rate = dup_rate
        self._endpoints: dict[str, _Endpoint] = {}
        #: endpoint -> partition group id; endpoints can talk iff equal
        self._partition: dict[str, int] = {}
        self._mutex = threading.Lock()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register(
        self, name: str, handler: Callable[[Any], Any], buffered: bool = False
    ) -> None:
        """Attach an endpoint.  ``buffered`` endpoints queue messages
        for :meth:`pump` instead of handling them inline."""
        with self._mutex:
            self._endpoints[name] = _Endpoint(name, handler, buffered=buffered)
            self._partition.setdefault(name, 0)

    def partition(self, groups: list[list[str]]) -> None:
        """Split the network: endpoints in different groups cannot
        communicate.  Unlisted endpoints join group 0."""
        with self._mutex:
            for name in self._partition:
                self._partition[name] = 0
            for group_id, members in enumerate(groups):
                for name in members:
                    self._partition[name] = group_id

    def heal(self) -> None:
        """End all partitions."""
        with self._mutex:
            for name in self._partition:
                self._partition[name] = 0

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, *, reliable: bool = False) -> None:
        """Send one message.  Raises :class:`PartitionedError` when the
        endpoints cannot reach each other; silently drops on simulated
        loss unless ``reliable`` (loss then raises
        :class:`MessageLost` so RPC layers can retry)."""
        with self._mutex:
            endpoint = self._endpoints.get(dst)
            if endpoint is None:
                raise PartitionedError(f"no endpoint {dst!r}")
            if self._partition.get(src, 0) != self._partition.get(dst, 0):
                self.stats.blocked_by_partition += 1
                raise PartitionedError(f"{src!r} and {dst!r} are partitioned")
            self.stats.sent += 1
            drop = self._rng.random() < self.loss_rate
            dup = self._rng.random() < self.dup_rate
        if drop:
            self.stats.lost += 1
            if reliable:
                raise MessageLost(f"message {src!r} -> {dst!r} lost")
            return
        self._deliver(endpoint, payload)
        if dup:
            self.stats.duplicated += 1
            self._deliver(endpoint, payload)

    def _deliver(self, endpoint: _Endpoint, payload: Any) -> None:
        self.stats.delivered += 1
        if endpoint.buffered:
            endpoint.mailbox.append(payload)
        else:
            endpoint.handler(payload)

    def pump(self, name: str, limit: int | None = None) -> int:
        """Deliver queued messages of a buffered endpoint; returns how
        many were handled."""
        endpoint = self._endpoints[name]
        handled = 0
        while endpoint.mailbox and (limit is None or handled < limit):
            payload = endpoint.mailbox.popleft()
            endpoint.handler(payload)
            handled += 1
        return handled

    def pending(self, name: str) -> int:
        return len(self._endpoints[name].mailbox)
