"""Transport abstraction: correlated request/response over any medium.

:class:`~repro.comm.rpc.RpcChannel` grew a careful little engine —
per-call correlation ids, duplicate-response discard, bounded retries
with seeded exponential backoff — welded to the simulated network.
This module extracts that engine (:class:`CorrelatedChannel`) behind a
``Transport`` interface so the *same* retry/correlation semantics run
over two media:

* :class:`InProcTransport` / :class:`InProcListener` — the simulated
  :class:`~repro.comm.network.SimNetwork`, byte-identical to the old
  ``RpcChannel`` behaviour (same message tuples, same message counts,
  same RNG draw discipline) but carrying *data* payloads instead of
  closures, so the protocol is the one a real wire can speak.  This is
  the deterministic substrate chaos schedules replay on.
* :class:`TcpTransport` / :class:`TcpListener` — a real socket speaking
  the CRC'd length-prefixed frames of :mod:`repro.comm.wire`.  One
  connection multiplexes any number of concurrent calls (a reader
  thread routes responses by correlation id); a dead connection is
  reconnected with the same seeded backoff an in-proc retry uses.

A **transport**'s contract is one method::

    response_payload = transport.request(payload, timeout=..., retries=...)

raising the :mod:`repro.errors` comm taxonomy (:class:`RpcTimeout`,
:class:`PartitionedError`) on failure.  The transport is at-least-once:
a retried request may execute twice at the server, so payloads must
name idempotent operations — or, as in the paper, tagged queue
operations whose duplicates are absorbed.  Pass ``retries=0`` for
at-most-once calls (transaction control ops).

A **listener**'s contract is one callable: ``handler(payload) ->
response_payload``.  Handlers are responsible for their own error
envelopes (see :func:`repro.comm.wire.error_payload`); a handler may
return :data:`NO_RESPONSE` to deliberately drop the reply (fault
injection for at-least-once tests).
"""

from __future__ import annotations

import random
import socket
import threading
import time as _time
from typing import Any, Callable, Protocol, runtime_checkable

from repro.comm.network import SimNetwork
from repro.comm.wire import (
    DEFAULT_MAX_FRAME,
    KIND_CALL,
    KIND_RESP,
    FrameError,
    FrameReader,
    encode_frame,
)
from repro.errors import CommError, MessageLost, PartitionedError, RpcTimeout

_NO_RESPONSE = object()

#: sentinel a listener handler may return to drop the response on the
#: floor (simulates a lost reply over a live connection)
NO_RESPONSE = object()


@runtime_checkable
class Transport(Protocol):
    """Anything that can deliver a request payload and return the
    correlated response payload."""

    def request(self, payload: Any, timeout: float | None = None,
                retries: int | None = None) -> Any:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


class CorrelatedChannel:
    """The retry/correlation engine shared by every transport.

    Subclasses implement :meth:`_transmit` (send one call frame; raise
    :class:`CommError` if the medium rejected it) and feed responses to
    :meth:`_deliver_response`.  Media with synchronous delivery (the
    simulated network runs the handler inside ``send``) use
    ``wait_timeout=None``: the response is either present immediately
    after a successful transmit or the message was lost.  Asynchronous
    media (sockets) pass a per-attempt wait in seconds.

    Parameters mirror :class:`~repro.comm.rpc.RpcChannel`: retry ``n``
    sleeps ``base * factor**n`` capped at ``max``, scaled by jitter in
    ``[0.5, 1.0)`` from a :class:`random.Random` seeded with ``seed``.
    """

    #: raise PartitionedError (not RpcTimeout) when no attempt was ever
    #: transmitted — real sockets distinguish "unreachable" from "no
    #: answer"; the in-proc channel keeps the legacy RpcTimeout
    _PARTITION_RAISES = False

    def __init__(
        self,
        max_retries: int = 10,
        backoff_base: float = 0.0005,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.01,
        seed: int = 0,
        wait_timeout: float | None = None,
    ):
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.wait_timeout = wait_timeout
        self._rng = random.Random(seed)
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._next_call_id = 1
        #: call id -> result slot (kept _NO_RESPONSE until the first
        #: response for that id arrives; later duplicates are dropped)
        self._pending: dict[int, Any] = {}
        self.calls = 0
        self.retries = 0

    # -- medium hooks ---------------------------------------------------

    def _transmit(self, call_id: int, payload: Any) -> Any:
        """Send one call frame; returns an opaque attempt token passed
        to :meth:`_attempt_broken` (media that can detect a dead
        connection use it to cut response waits short)."""
        raise NotImplementedError

    def _attempt_broken(self, token: Any) -> bool:
        """True when the medium knows this attempt's response can never
        arrive (connection died) — the engine retries immediately."""
        return False

    def _deliver_response(self, call_id: int, result: Any) -> None:
        with self._cond:
            # Unknown id: a duplicate for a call that already returned,
            # or a response to a previous incarnation of this endpoint.
            if self._pending.get(call_id, None) is _NO_RESPONSE:
                self._pending[call_id] = result
                self._cond.notify_all()

    # -- engine ---------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        if self.backoff_base <= 0.0:
            return
        delay = min(self.backoff_max, self.backoff_base * self.backoff_factor ** attempt)
        with self._mutex:
            jitter = 0.5 + self._rng.random() / 2.0
        _time.sleep(delay * jitter)

    def request(self, payload: Any, timeout: float | None = None,
                retries: int | None = None) -> Any:
        """Send ``payload``; return the correlated response payload.

        ``timeout`` overrides the per-attempt response wait (async media
        only); ``retries`` overrides the channel's retry budget —
        ``retries=0`` makes the call at-most-once."""
        self.calls += 1
        budget = self.max_retries if retries is None else retries
        wait = self.wait_timeout if timeout is None else timeout
        with self._mutex:
            call_id = self._next_call_id
            self._next_call_id += 1
            self._pending[call_id] = _NO_RESPONSE
        transmitted = False
        last: CommError | None = None
        try:
            for attempt in range(budget + 1):
                if attempt:
                    self.retries += 1
                    self._backoff(attempt - 1)
                try:
                    token = self._transmit(call_id, payload)
                except (MessageLost, PartitionedError) as exc:
                    last = exc
                    continue
                transmitted = True
                if self.wait_timeout is None:
                    # Synchronous medium: delivery (or loss) already
                    # happened inside _transmit — a per-call timeout
                    # has nothing to wait for.
                    with self._mutex:
                        result = self._pending[call_id]
                    if result is not _NO_RESPONSE:
                        return result
                    continue
                deadline = _time.monotonic() + wait
                with self._cond:
                    while True:
                        result = self._pending[call_id]
                        if result is not _NO_RESPONSE:
                            return result
                        if self._attempt_broken(token):
                            break
                        remaining = deadline - _time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
            if self._PARTITION_RAISES and not transmitted:
                raise PartitionedError(
                    f"peer unreachable after {budget} retries: {last}"
                ) from last
            raise RpcTimeout(
                f"no response after {budget} retries"
            )
        finally:
            with self._mutex:
                self._pending.pop(call_id, None)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


# ---------------------------------------------------------------------------
# In-process transport over the simulated network
# ---------------------------------------------------------------------------


class InProcTransport(CorrelatedChannel):
    """The wire protocol over :class:`SimNetwork`.

    Message shapes and counts match :class:`~repro.comm.rpc.RpcChannel`
    exactly — ``("call", id, payload, reply_to)`` out, ``("resp", id,
    result)`` back, one send each — so chaos schedules that replayed
    against the closure-based channel replay unchanged against this
    one.  Only the payload changed: data instead of a closure.
    """

    def __init__(
        self,
        network: SimNetwork,
        local: str,
        remote: str,
        max_retries: int = 10,
        backoff_base: float = 0.0005,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(
            max_retries=max_retries,
            backoff_base=backoff_base,
            backoff_factor=backoff_factor,
            backoff_max=backoff_max,
            seed=seed,
            wait_timeout=None,
        )
        self.network = network
        self.local = local
        self.remote = remote
        network.register(local, self._on_message)

    def _on_message(self, message: Any) -> None:
        if not (isinstance(message, tuple) and len(message) == 3
                and message[0] == KIND_RESP):
            return  # not a correlated response; ignore
        _, call_id, result = message
        self._deliver_response(call_id, result)

    def _transmit(self, call_id: int, payload: Any) -> None:
        self.network.send(
            self.local,
            self.remote,
            (KIND_CALL, call_id, payload, self.local),
            reliable=True,
        )


class InProcListener:
    """Server side of :class:`InProcTransport`: dispatches each call
    payload to ``handler`` and responds over the network.

    The handler runs in the *sender's* thread (simulated-network
    delivery is synchronous), so injected crashes propagate into the
    caller's stack exactly as with :class:`~repro.comm.rpc.RpcServer`.
    """

    def __init__(self, network: SimNetwork, name: str,
                 handler: Callable[[Any], Any]):
        self.network = network
        self.name = name
        self.handler = handler
        network.register(name, self._on_message)
        self.handled = 0

    def _on_message(self, message: Any) -> None:
        if not (isinstance(message, tuple) and len(message) == 4
                and message[0] == KIND_CALL):
            return
        _, call_id, payload, reply_to = message
        self.handled += 1
        result = self.handler(payload)
        if result is NO_RESPONSE:
            return  # fault hook: swallow the reply
        try:
            self.network.send(
                self.name, reply_to, (KIND_RESP, call_id, result), reliable=True
            )
        except (MessageLost, PartitionedError):
            # The response is lost; the caller retries the whole call.
            pass


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

#: per-attempt response wait before the call is retried (the retry may
#: re-execute at the server — at-least-once, like the in-proc channel)
DEFAULT_CALL_TIMEOUT = 10.0


class TcpTransport(CorrelatedChannel):
    """One multiplexed TCP connection to a :class:`TcpListener`.

    Thread-safe: any number of threads may :meth:`request` concurrently
    over the single socket; a reader thread routes each response frame
    to its caller by correlation id.  A send or connect failure tears
    the connection down and the retry path reconnects under the seeded
    backoff.  Reconnect-heavy defaults (higher backoff cap) keep a
    restart storm against a dead shard polite.
    """

    _PARTITION_RAISES = True

    def __init__(
        self,
        host: str,
        port: int,
        max_retries: int = 10,
        backoff_base: float = 0.02,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.5,
        seed: int = 0,
        timeout: float = DEFAULT_CALL_TIMEOUT,
        connect_timeout: float = 2.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        super().__init__(
            max_retries=max_retries,
            backoff_base=backoff_base,
            backoff_factor=backoff_factor,
            backoff_max=backoff_max,
            seed=seed,
            wait_timeout=timeout,
        )
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.max_frame = max_frame
        self._io_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._generation = 0
        self._closed = False
        self.reconnects = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- connection management -----------------------------------------

    def _connect_locked(self) -> socket.socket:
        if self._closed:
            raise PartitionedError("transport is closed")
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._generation += 1
        thread = threading.Thread(
            target=self._read_loop,
            args=(sock, self._generation),
            daemon=True,
            name=f"tcp-transport-{self.host}:{self.port}",
        )
        thread.start()
        return sock

    def _teardown(self, sock: socket.socket) -> None:
        with self._io_lock:
            if self._sock is sock:
                self._sock = None
        try:
            sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def _read_loop(self, sock: socket.socket, generation: int) -> None:
        reader = FrameReader(self.max_frame)
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                self.bytes_received += len(chunk)
                for kind, call_id, payload in reader.feed(chunk):
                    if kind == KIND_RESP:
                        self._deliver_response(call_id, payload)
        except (OSError, FrameError):
            pass
        self._teardown(sock)
        # Wake blocked callers so they retry instead of waiting out the
        # full per-attempt timeout against a dead socket.
        with self._cond:
            self._cond.notify_all()

    # -- engine hook ----------------------------------------------------

    def _transmit(self, call_id: int, payload: Any) -> int:
        data = encode_frame(KIND_CALL, call_id, payload)
        with self._io_lock:
            sock = self._sock
            if sock is None:
                try:
                    sock = self._connect_locked()
                    if self._generation > 1:
                        self.reconnects += 1
                except OSError as exc:
                    raise PartitionedError(
                        f"cannot connect to {self.host}:{self.port}: {exc}"
                    ) from exc
            try:
                sock.sendall(data)
            except OSError as exc:
                self._sock = None
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best effort
                    pass
                raise PartitionedError(
                    f"send to {self.host}:{self.port} failed: {exc}"
                ) from exc
            generation = self._generation
        self.bytes_sent += len(data)
        return generation

    def _attempt_broken(self, token: Any) -> bool:
        # The socket that carried this attempt is gone: its response
        # can never arrive, so the engine should retry now rather than
        # wait out the full per-attempt timeout.
        sock = self._sock
        return sock is None or self._generation != token

    def close(self) -> None:
        with self._io_lock:
            self._closed = True
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass


class TcpListener:
    """Accepts connections and serves wire-protocol calls.

    One acceptor thread; one reader thread per connection; each call is
    dispatched to a worker thread so a blocking operation (a waiting
    dequeue) cannot stall other calls multiplexed on the same socket.
    Responses are written under a per-connection lock, in completion
    order — the correlation id, not arrival order, matches them up.

    ``handler(payload) -> response_payload`` supplies the service; it
    must catch its own application errors and return envelopes (see
    :mod:`repro.comm.wire`).  An exception escaping the handler drops
    the connection.  Returning :data:`NO_RESPONSE` swallows the reply
    (fault injection for retry tests).
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_inflight: int = 256,
    ):
        self.handler = handler
        self.max_frame = max_frame
        self.handled = 0
        self._closed = False
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        #: bounds concurrently-executing calls per listener — the
        #: server-side half of admission control
        self._inflight = threading.BoundedSemaphore(max_inflight)
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):  # port-pinned restarts must
            # rebind while a predecessor's orphaned connections linger
            # in FIN_WAIT (SO_REUSEADDR only covers TIME_WAIT)
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        self._server.bind((host, port))
        self._server.listen(128)
        self.host, self.port = self._server.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"tcp-listener-{self.port}",
        )
        self._acceptor.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True,
                name=f"tcp-conn-{self.port}",
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        reader = FrameReader(self.max_frame)
        wlock = threading.Lock()
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                for kind, call_id, payload in reader.feed(chunk):
                    if kind != KIND_CALL:
                        continue
                    self._inflight.acquire()
                    threading.Thread(
                        target=self._run_call,
                        args=(conn, wlock, call_id, payload),
                        daemon=True,
                    ).start()
        except (OSError, FrameError):
            pass
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _run_call(self, conn: socket.socket, wlock: threading.Lock,
                  call_id: int, payload: Any) -> None:
        try:
            result = self.handler(payload)
            self.handled += 1
            if result is NO_RESPONSE:
                return
            frame = encode_frame(KIND_RESP, call_id, result)
            with wlock:
                conn.sendall(frame)
        except OSError:
            pass  # peer went away; the caller's retry reconnects
        finally:
            self._inflight.release()

    def close(self) -> None:
        self._closed = True
        # shutdown() wakes a thread blocked in accept(); close() alone
        # would leave it parked on the fd, and once the fd number is
        # reused by a successor listener the stale accept() would steal
        # that listener's connections and serve them with this handler.
        try:
            self._server.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._acceptor.join(timeout=1.0)
        try:
            self._server.close()
        except OSError:  # pragma: no cover - best effort
            pass
        with self._conns_lock:
            conns, self._conns = set(self._conns), set()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
