"""repro — Recoverable Requests Using Queues.

A full reproduction of Bernstein, Hsu & Mann, *Implementing Recoverable
Requests Using Queues* (SIGMOD 1990): fault-tolerant request/reply
protocols built on recoverable queueing, with every substrate (stable
storage, write-ahead logging, transactions, locking, two-phase commit,
the queue manager itself) implemented from scratch.

Quickstart::

    from repro import TPSystem, TicketPrinter

    system = TPSystem()
    device = TicketPrinter(trace=system.trace)
    server = system.server("s1", lambda txn, req: {"echo": req.body})
    server.start()
    client = system.client("c1", ["hello"], device)
    replies = client.run()
    server.stop()
    system.checker().assert_ok()   # the Section 3 guarantees

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-reproduction experiment index.
"""

import logging as _logging

# Library logging hygiene: repro never configures handlers for the
# application; attach a NullHandler so un-configured users see no
# "No handler found" warnings.  Enable with e.g.
# ``logging.getLogger("repro").setLevel(logging.DEBUG)`` plus a handler.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.errors import ReproError
from repro.obs import Observability, get_observability, set_observability
from repro.sim.crash import FaultInjector, CrashPlan
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder
from repro.storage.disk import MemDisk, FileDisk
from repro.storage.kvstore import KVStore
from repro.transaction.manager import TransactionManager, Transaction
from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.core.client import Client, UserCheckpoint
from repro.core.clerk import Clerk
from repro.core.devices import TicketPrinter, CashDispenser, DisplayWithUserIds
from repro.core.guarantees import GuaranteeChecker
from repro.core.request import Request, Reply, make_rid
from repro.core.server import Server
from repro.core.system import TPSystem

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Observability",
    "get_observability",
    "set_observability",
    "FaultInjector",
    "CrashPlan",
    "crash_every_step",
    "TraceRecorder",
    "MemDisk",
    "FileDisk",
    "KVStore",
    "TransactionManager",
    "Transaction",
    "QueueManager",
    "QueueRepository",
    "Client",
    "UserCheckpoint",
    "Clerk",
    "TicketPrinter",
    "CashDispenser",
    "DisplayWithUserIds",
    "GuaranteeChecker",
    "Request",
    "Reply",
    "make_rid",
    "Server",
    "TPSystem",
    "__version__",
]
