"""Resource-manager protocol.

Every recoverable component of a node — the KV store, each recoverable
queue, the registration table — is a *resource manager* (RM).  The
paper's phrase for this is direct: "the reply processor (e.g., user) is
just another 'resource manager' that participates in the transaction"
(Section 2).

An RM:

* applies its updates to volatile state immediately (inside the
  invoking transaction), after writing a **redo** record through the
  node's shared :class:`~repro.transaction.log.LogManager`;
* registers **undo** closures with the transaction so an abort can
  reverse the volatile effects;
* implements :meth:`ResourceManager.redo` so restart recovery can
  rebuild volatile state by replaying committed records; redo must be
  **idempotent** (recovery may replay records already captured in a
  checkpoint);
* implements :meth:`snapshot` / :meth:`restore` for checkpoints.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class ResourceManager(Protocol):
    """Interface every recoverable component implements."""

    #: Unique name within the node; log records are routed by this name.
    rm_name: str

    def redo(self, data: dict[str, Any]) -> None:
        """Re-apply one committed update record to volatile state.
        Must be idempotent."""

    def snapshot(self) -> Any:
        """Codec-encodable representation of the full volatile state."""

    def restore(self, state: Any) -> None:
        """Replace volatile state with a :meth:`snapshot` result."""
