"""Transaction-processing substrate.

The paper requires (Section 4) that queue operations are all-or-nothing,
serializable with respect to each other, and — when invoked from within
a transaction — obey full transaction semantics.  This package provides
the machinery:

* :mod:`repro.transaction.cc` — pluggable concurrency-control
  strategies (strict 2PL, and the no-lock strategy of the
  deterministic lane),
* :mod:`repro.transaction.locks` — strict two-phase locking with a
  waits-for-graph deadlock detector,
* :mod:`repro.transaction.deterministic` — the QueCC-style
  deterministic execution lane: per-shard plan queues drained serially
  without locks or conflict aborts,
* :mod:`repro.transaction.log` — a typed, shared, force-at-commit redo
  log multiplexing every resource manager of a node over one WAL,
* :mod:`repro.transaction.manager` — begin / commit / abort, in-memory
  undo, commit and abort hooks,
* :mod:`repro.transaction.recovery` — restart recovery (checkpoint +
  redo of committed work, in-doubt transaction extraction),
* :mod:`repro.transaction.twophase` — two-phase commit across nodes
  (the "multiple transaction protocols" concern of Section 6),
* :mod:`repro.transaction.routing` — routed transactions over
  repository shards: single-shard commits keep the one-log-force fast
  path, cross-shard commits are promoted to two-phase commit.
"""

from repro.transaction.cc import (
    ConcurrencyControl,
    DeterministicCC,
    TwoPhaseLockingCC,
)
from repro.transaction.deterministic import (
    DET_PLAN_CRASH_POINTS,
    DeterministicLane,
)
from repro.transaction.ids import TxnId, TxnStatus
from repro.transaction.locks import LockManager, LockMode
from repro.transaction.log import LogManager, LogRecord
from repro.transaction.manager import Transaction, TransactionManager
from repro.transaction.recovery import recover, RecoveryReport
from repro.transaction.routing import RoutedTransaction, ShardedTransactionManager
from repro.transaction.twophase import TwoPhaseCoordinator

__all__ = [
    "TxnId",
    "TxnStatus",
    "ConcurrencyControl",
    "TwoPhaseLockingCC",
    "DeterministicCC",
    "DeterministicLane",
    "DET_PLAN_CRASH_POINTS",
    "LockManager",
    "LockMode",
    "LogManager",
    "LogRecord",
    "Transaction",
    "TransactionManager",
    "recover",
    "RecoveryReport",
    "RoutedTransaction",
    "ShardedTransactionManager",
    "TwoPhaseCoordinator",
]
