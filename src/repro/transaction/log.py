"""Typed, shared, force-at-commit redo log.

One :class:`LogManager` serves *all* resource managers of a node over a
single :class:`~repro.storage.wal.WriteAheadLog`.  Because the commit
record is a single log append, a transaction that touches several RMs
(the server's ``Dequeue; update database; Enqueue`` of Section 5) is
atomic without any intra-node commit protocol.

Record kinds
------------

``upd``
    A redo record for one RM update, tagged with its transaction.
    Replayed at recovery only if the transaction committed.
``cmt`` / ``abt``
    Transaction outcome.  ``cmt`` is force-flushed (force-at-commit);
    ``abt`` is advisory (an uncommitted transaction is aborted by
    omission).
``auto``
    An auto-committed update: durable and replayed unconditionally, in
    log order.  Used for state that must survive even when the
    enclosing transaction aborts — e.g. the dequeue-abort counters that
    drive the error-queue bound of Section 4.2, and the persistent
    registration records of Section 4.3 when updated outside any
    transaction (the client side of the queue "gateway").
``prep``
    Two-phase-commit branch prepared (force-flushed; carries the global
    transaction id and the locks to be re-acquired at recovery).
``out``
    Two-phase-commit outcome applied at a participant for a previously
    prepared branch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import CheckpointError
from repro.obs import Observability
from repro.sim.crash import FaultInjector
from repro.storage.codec import decode, encode
from repro.storage.disk import Disk
from repro.storage.groupcommit import GroupCommitConfig, GroupCommitter
from repro.storage.wal import WriteAheadLog

KIND_UPDATE = "upd"
KIND_COMMIT = "cmt"
KIND_ABORT = "abt"
KIND_AUTO = "auto"
KIND_PREPARE = "prep"
KIND_OUTCOME = "out"

_CHECKPOINT_AREA_SUFFIX = ".ckpt"


@dataclass(frozen=True)
class LogRecord:
    """Decoded log record."""

    lsn: int
    kind: str
    txn_id: int | None
    rm: str | None
    data: dict[str, Any]


class LogManager:
    """Shared typed log + checkpoint area for one node."""

    def __init__(self, disk: Disk, area: str = "log",
                 obs: Observability | None = None,
                 injector: FaultInjector | None = None,
                 group_commit: GroupCommitConfig | None = None):
        self.disk = disk
        self.area = area
        self.wal = WriteAheadLog(disk, area, obs=obs)
        self.group_commit = (
            group_commit if group_commit is not None else GroupCommitConfig()
        )
        #: coalesces concurrent commit forces; None when disabled
        self.group: GroupCommitter | None = (
            GroupCommitter(self.wal, self.group_commit, injector=injector, obs=obs)
            if self.group_commit.enabled
            else None
        )
        self._lock = threading.Lock()
        #: counters for benchmarks
        self.update_records = 0
        self.commit_records = 0

    # -- writing ------------------------------------------------------------

    def _append(self, kind: str, txn_id: int | None, rm: str | None, data: dict[str, Any], *, flush: bool) -> int:
        payload = encode({"k": kind, "t": txn_id, "rm": rm, "d": data})
        if not flush:
            return self.wal.append(payload)
        if self.group is not None:
            # Force-at-commit via the group committer: append, then park
            # until a (possibly shared) flush covers the record.
            return self.group.append_sync(payload)
        return self.wal.append_flush(payload)

    def log_update(self, txn_id: int, rm: str, data: dict[str, Any]) -> int:
        """Buffered redo record; durability comes with the commit flush."""
        self.update_records += 1
        return self._append(KIND_UPDATE, txn_id, rm, data, flush=False)

    def log_auto(self, rm: str, data: dict[str, Any]) -> int:
        """Auto-committed update: immediately durable, replayed always."""
        return self._append(KIND_AUTO, None, rm, data, flush=True)

    def log_commit(self, txn_id: int) -> int:
        """Force-at-commit: the commit record and everything before it
        become durable together."""
        self.commit_records += 1
        return self._append(KIND_COMMIT, txn_id, None, {}, flush=True)

    def log_abort(self, txn_id: int, reason: str = "") -> int:
        return self._append(KIND_ABORT, txn_id, None, {"reason": reason}, flush=False)

    def log_prepare(self, txn_id: int, global_id: str, locks: list[str]) -> int:
        return self._append(
            KIND_PREPARE, txn_id, None, {"gid": global_id, "locks": locks}, flush=True
        )

    def log_outcome(self, txn_id: int, decision: str) -> int:
        return self._append(KIND_OUTCOME, txn_id, None, {"decision": decision}, flush=True)

    # -- reading ------------------------------------------------------------

    def records(self) -> list[LogRecord]:
        """All durable+buffered records, in order (live view)."""
        out = []
        for raw in self.wal.scan():
            body = decode(raw.payload)
            out.append(
                LogRecord(raw.lsn, body["k"], body["t"], body["rm"], body["d"])
            )
        return out

    # -- checkpointing ----------------------------------------------------------

    @property
    def checkpoint_area(self) -> str:
        return self.area + _CHECKPOINT_AREA_SUFFIX

    def write_checkpoint(self, snapshots: dict[str, Any]) -> None:
        """Atomically persist RM snapshots, then truncate the log.

        A crash between the two steps leaves the checkpoint *and* the old
        log; recovery replays the log on top of the checkpoint, which is
        safe because RM redo is idempotent.
        """
        self.disk.replace(self.checkpoint_area, encode({"rms": snapshots}))
        self.wal.reset()

    def read_checkpoint(self) -> dict[str, Any] | None:
        raw = self.disk.read(self.checkpoint_area)
        if not raw:
            return None
        try:
            body = decode(raw)
        except Exception as exc:  # codec error -> unusable checkpoint
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc
        return body["rms"]

    # -- analysis helpers (used by recovery) ---------------------------------------

    def committed_txns(self, records: Iterable[LogRecord] | None = None) -> set[int]:
        recs = self.records() if records is None else records
        return {r.txn_id for r in recs if r.kind == KIND_COMMIT and r.txn_id is not None}

    def outcome_decisions(self, records: Iterable[LogRecord] | None = None) -> dict[int, str]:
        recs = self.records() if records is None else records
        return {
            r.txn_id: r.data["decision"]
            for r in recs
            if r.kind == KIND_OUTCOME and r.txn_id is not None
        }
