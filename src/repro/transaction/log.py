"""Typed, shared, force-at-commit redo log.

One :class:`LogManager` serves *all* resource managers of a node over a
single :class:`~repro.storage.wal.WriteAheadLog`.  Because the commit
record is a single log append, a transaction that touches several RMs
(the server's ``Dequeue; update database; Enqueue`` of Section 5) is
atomic without any intra-node commit protocol.

Per-transaction batching
------------------------

``upd`` records are not appended to the WAL one by one: each
transaction accumulates them in a private buffer — encoded directly
into the batch body via :func:`repro.storage.codec.encode_into`, so a
record is framed exactly once and never copied between buffers — and
the commit (or prepare) publishes buffer + outcome record as **one**
WAL batch append (:meth:`~repro.storage.wal.WriteAheadLog.append_batch`):
one log-lock acquisition, one CRC pass, one disk write, then the usual
single (group-shared) force.  An abort simply drops the buffer — the
seed's abort-by-omission, made literal.  Correctness is unchanged:

* A buffered transaction has no WAL records, so a concurrent fuzzy
  checkpoint's begin marker lands *below* the batch; the transaction's
  first LSN is published under the WAL lock during the batch append
  (exactly as the seed published it during the first ``upd`` append),
  so the floor protocol in :meth:`LogManager.recovery_floor` holds
  verbatim.
* A torn batch is dropped whole at recovery, which is indistinguishable
  from the seed losing the same transaction's unflushed ``upd`` + ``cmt``
  records: the commit never returned, so the transaction must die.
* Crash points ``wal.<area>.batch_append.before`` / ``.after`` bracket
  the publish for the chaos harness (before: everything volatile;
  after: appended and forced — the transaction must survive recovery).

Record kinds
------------

``upd``
    A redo record for one RM update, tagged with its transaction.
    Replayed at recovery only if the transaction committed.
``cmt`` / ``abt``
    Transaction outcome.  ``cmt`` is force-flushed (force-at-commit);
    ``abt`` is advisory (an uncommitted transaction is aborted by
    omission).
``auto``
    An auto-committed update: durable and replayed unconditionally, in
    log order.  Used for state that must survive even when the
    enclosing transaction aborts — e.g. the dequeue-abort counters that
    drive the error-queue bound of Section 4.2, and the persistent
    registration records of Section 4.3 when updated outside any
    transaction (the client side of the queue "gateway").
``prep``
    Two-phase-commit branch prepared (force-flushed; carries the global
    transaction id and the locks to be re-acquired at recovery).
``out``
    Two-phase-commit outcome applied at a participant for a previously
    prepared branch.
``bck`` / ``eck``
    Fuzzy-checkpoint markers (ARIES-style).  ``bck`` opens a checkpoint
    (always the first record of a fresh segment — the checkpoint rolls
    first so segment GC can reclaim everything older); ``eck`` closes
    it, carrying the active-transaction table and the computed recovery
    LSN.  Both are bookkeeping, not redo: :meth:`LogManager.records`
    filters them out, and recovery takes its starting point from the
    installed checkpoint blob instead.

Checkpoint protocol
-------------------

:meth:`begin_checkpoint` (roll + ``bck`` at LSN *B*) → snapshot the RMs
(no quiescence; the caller takes committed-view snapshots under each
RM's own mutex) → :meth:`recovery_floor` (min of *B*, the first LSN of
every transaction with live log records, and every GC pin) →
:meth:`end_checkpoint` (forced ``eck``) → :meth:`install_checkpoint`
(atomic blob replace) → :meth:`gc` (reclaim sealed segments below the
floor).  A crash at any point leaves either the old checkpoint or the
new one installed, and in both cases every record at/above the
installed checkpoint's recovery LSN is still on disk, so
recovery-over-snapshot (idempotent redo) reconstructs the same state.

In-doubt two-phase-commit branches outlive restarts, so recovery *pins*
(:meth:`pin`) each branch at its first LSN; the pin holds the floor —
and therefore segment GC — back until the coordinator's decision
resolves the branch (:meth:`unpin`).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.errors import CheckpointError
from repro.obs import Observability
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.storage.codec import _encode_into, _write_varint, decode, encode
from repro.storage.disk import Disk
from repro.storage.groupcommit import GroupCommitConfig, GroupCommitter
from repro.storage.wal import SUB_HEADER_SIZE, WriteAheadLog

KIND_UPDATE = "upd"
KIND_COMMIT = "cmt"
KIND_ABORT = "abt"
KIND_AUTO = "auto"
KIND_PREPARE = "prep"
KIND_OUTCOME = "out"
KIND_BEGIN_CKPT = "bck"
KIND_END_CKPT = "eck"

#: marker kinds hidden from :meth:`LogManager.records`
_CKPT_KINDS = (KIND_BEGIN_CKPT, KIND_END_CKPT)

_CHECKPOINT_AREA_SUFFIX = ".ckpt"
_CHECKPOINT_VERSION = 2

#: sub-frame length prefix of a WAL batch body (see ``append_batch``)
_SUB_LEN = struct.Struct(">I")
_SUB_LEN_ZERO = b"\x00" * SUB_HEADER_SIZE


def _record_envelope(kind: str) -> bytes:
    """Codec bytes of ``{"k": kind, "t": …`` up to (excluding) the
    txn-id value — the constant prefix of every record of ``kind``."""
    raw = kind.encode("utf-8")
    return b"M\x04\x01kS" + bytes((len(raw),)) + raw + b"\x01t"


#: per-kind constant envelope prefixes (every record is the codec dict
#: ``{"k": kind, "t": txn_id, "rm": rm, "d": data}``; kind comes from a
#: closed set, so its prefix is precomputable)
_ENVELOPES = {
    kind: _record_envelope(kind)
    for kind in (KIND_UPDATE, KIND_COMMIT, KIND_ABORT, KIND_AUTO,
                 KIND_PREPARE, KIND_OUTCOME, KIND_BEGIN_CKPT, KIND_END_CKPT)
}

#: codec bytes of the str-keyed entries ``"rm": <name>`` keyed by name —
#: resource-manager names are one-per-queue/table, so the tiny closed
#: set amortizes to zero; capped as a safety valve against unbounded
#: dynamically-named areas
_RM_ENTRIES: dict[str, bytes] = {}
_RM_CACHE_CAP = 1024


def _rm_entry(rm: str) -> bytes:
    entry = _RM_ENTRIES.get(rm)
    if entry is None:
        out = bytearray(b"\x02rm")
        _encode_into(out, rm)
        entry = bytes(out)
        if len(_RM_ENTRIES) < _RM_CACHE_CAP:
            _RM_ENTRIES[rm] = entry
    return entry


class _TxnBuffer:
    """One transaction's pending ``upd`` records, pre-framed as a WAL
    batch body: records are encoded straight into ``body`` behind a
    length placeholder that is patched in place — no per-record bytes
    object, no re-framing at publish time.

    The record envelope (kind / txn id / rm keys) is written from
    precomputed byte skeletons — byte-identical to the generic codec
    encoding of the envelope dict, but without building the dict or
    walking it generically (this is the hottest encode in the system:
    every update of every transaction passes through here)."""

    __slots__ = ("body", "offsets")

    def __init__(self) -> None:
        self.body = bytearray()
        self.offsets: list[int] = []

    def add(self, kind: str, txn_id: int | None, rm: str | None,
            data: dict[str, Any]) -> int:
        """Sub-frame and append one record; returns its index."""
        body = self.body
        start = len(body)
        self.offsets.append(start)
        body += _SUB_LEN_ZERO
        body += _ENVELOPES[kind]
        if txn_id is None:
            body += b"N"
        else:
            zig = txn_id + txn_id if txn_id >= 0 else -txn_id - txn_id - 1
            body += b"I"
            if zig < 0x80:
                body.append(zig)
            else:
                _write_varint(body, zig)
        body += _rm_entry(rm) if rm is not None else b"\x02rmN"
        body += b"\x01d"
        _encode_into(body, data)
        _SUB_LEN.pack_into(body, start, len(body) - start - SUB_HEADER_SIZE)
        return len(self.offsets) - 1


@dataclass(frozen=True)
class LogRecord:
    """Decoded log record."""

    lsn: int
    kind: str
    txn_id: int | None
    rm: str | None
    data: dict[str, Any]


@dataclass(frozen=True)
class CheckpointImage:
    """A decoded checkpoint blob.

    ``recovery_lsn`` is where replay starts (0 for legacy quiescent
    checkpoints, which covered everything); ``next_txn_id`` preserves
    the transaction-id watermark even when the records that proved it
    have been reclaimed by segment GC.
    """

    rms: dict[str, Any]
    recovery_lsn: int = 0
    next_txn_id: int = 0


class LogManager:
    """Shared typed log + checkpoint area for one node."""

    def __init__(self, disk: Disk, area: str = "log",
                 obs: Observability | None = None,
                 injector: FaultInjector | None = None,
                 group_commit: GroupCommitConfig | None = None,
                 segment_bytes: int | None = None):
        self.disk = disk
        self.area = area
        wal_kwargs = {} if segment_bytes is None else {"segment_bytes": segment_bytes}
        self.wal = WriteAheadLog(disk, area, obs=obs, **wal_kwargs)
        self.group_commit = (
            group_commit if group_commit is not None else GroupCommitConfig()
        )
        #: coalesces concurrent commit forces; None when disabled
        self.group: GroupCommitter | None = (
            GroupCommitter(self.wal, self.group_commit, injector=injector, obs=obs)
            if self.group_commit.enabled
            else None
        )
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._point_batch_before = f"wal.{area}.batch_append.before"
        self._point_batch_after = f"wal.{area}.batch_append.after"
        self._lock = threading.Lock()
        #: per-transaction batch buffers: ``upd`` records parked here
        #: until the commit/prepare publishes them as one WAL batch
        self._buffers: dict[int, _TxnBuffer] = {}
        #: first LSN of every transaction with records in the live log
        self._txn_first: dict[int, int] = {}
        #: GC pins: floor contributions that outlive transactions
        #: (in-doubt 2PC branches awaiting their coordinator)
        self._pins: dict[Hashable, int] = {}
        #: LSN of the last installed checkpoint's begin record — the
        #: base of the bytes-since-checkpoint trigger.  Starts at the
        #: oldest on-disk LSN so a restarted node measures from what it
        #: actually still carries.
        self._ckpt_base = self.wal.oldest_lsn()
        #: counters for benchmarks
        self.update_records = 0
        self.commit_records = 0

    # -- writing ------------------------------------------------------------

    def _append(self, kind: str, txn_id: int | None, rm: str | None,
                data: dict[str, Any], *, flush: bool,
                on_lsn: Callable[[int], None] | None = None) -> int:
        payload = encode({"k": kind, "t": txn_id, "rm": rm, "d": data})
        if on_lsn is None and txn_id is not None and kind in (KIND_UPDATE, KIND_PREPARE):
            # Publish the transaction's first LSN under the WAL lock:
            # a checkpoint that appends its begin marker *after* this
            # record is thereby guaranteed to see the entry when it
            # reads the table, so its recovery floor covers us.
            def on_lsn(lsn: int, txn_id: int = txn_id) -> None:
                with self._lock:
                    self._txn_first.setdefault(txn_id, lsn)
        if not flush:
            return self.wal.append(payload, on_lsn=on_lsn)
        if self.group is not None:
            # Force-at-commit via the group committer: append, then park
            # until a (possibly shared) flush covers the record.
            return self.group.append_sync(payload, on_lsn=on_lsn)
        return self.wal.append_flush(payload, on_lsn=on_lsn)

    def _publish(self, buf: _TxnBuffer, kind: str, txn_id: int,
                 data: dict[str, Any]) -> int:
        """Append ``buf``'s records plus the closing ``kind`` record as
        one forced WAL batch; returns the closing record's LSN.

        The transaction's first LSN is published under the WAL lock
        during the append — the same window the seed used for the first
        ``upd`` append — so a concurrent fuzzy checkpoint either sees
        the entry or has its begin marker below the whole batch.
        """
        buf.add(kind, txn_id, None, data)

        def on_lsns(lsns: list[int], txn_id: int = txn_id) -> None:
            with self._lock:
                self._txn_first.setdefault(txn_id, lsns[0])

        self.injector.reach(self._point_batch_before)
        if self.group is not None:
            lsns = self.group.append_batch_sync(
                buf.body, buf.offsets, on_lsns=on_lsns
            )
        else:
            lsns = self.wal.append_batch(buf.body, buf.offsets, on_lsns=on_lsns)
            self.wal.flush()
        self.injector.reach(self._point_batch_after)
        return lsns[-1]

    def _take_buffer(self, txn_id: int) -> _TxnBuffer | None:
        with self._lock:
            return self._buffers.pop(txn_id, None)

    def log_update(self, txn_id: int, rm: str, data: dict[str, Any]) -> int:
        """Buffer one redo record in the transaction's batch; it reaches
        the WAL with the commit/prepare publish (durability still comes
        with the commit flush).  Returns the record's index within the
        batch — its LSN exists only once the batch is published."""
        self.update_records += 1
        with self._lock:
            buf = self._buffers.get(txn_id)
            if buf is None:
                buf = self._buffers[txn_id] = _TxnBuffer()
            return buf.add(KIND_UPDATE, txn_id, rm, data)

    def log_auto(self, rm: str, data: dict[str, Any],
                 on_lsn: Callable[[int], None] | None = None) -> int:
        """Auto-committed update: immediately durable, replayed always.

        ``on_lsn`` runs under the WAL lock at append time — callers
        mirroring the record into volatile tracker state (2PC decisions,
        coordinator epochs) use it so a concurrent fuzzy checkpoint
        either snapshots the mirrored state or replays the record, never
        neither."""
        return self._append(KIND_AUTO, None, rm, data, flush=True, on_lsn=on_lsn)

    def log_commit(self, txn_id: int) -> int:
        """Force-at-commit: the transaction's buffered updates and its
        commit record become durable together, as one batch append and
        one (group-shared) flush."""
        self.commit_records += 1
        buf = self._take_buffer(txn_id)
        if buf is None:
            return self._append(KIND_COMMIT, txn_id, None, {}, flush=True)
        return self._publish(buf, KIND_COMMIT, txn_id, {})

    def log_abort(self, txn_id: int, reason: str = "") -> int:
        # Abort-by-omission, literally: the buffered updates never
        # reach the WAL.  The advisory ``abt`` record still does.
        self._take_buffer(txn_id)
        return self._append(KIND_ABORT, txn_id, None, {"reason": reason}, flush=False)

    def log_prepare(self, txn_id: int, global_id: str, locks: list[str]) -> int:
        data = {"gid": global_id, "locks": locks}
        buf = self._take_buffer(txn_id)
        if buf is None:
            return self._append(KIND_PREPARE, txn_id, None, data, flush=True)
        return self._publish(buf, KIND_PREPARE, txn_id, data)

    def log_outcome(self, txn_id: int, decision: str) -> int:
        return self._append(KIND_OUTCOME, txn_id, None, {"decision": decision}, flush=True)

    # -- fencing (failover) --------------------------------------------------

    def fence(self, reason: str = "superseded by failover") -> None:
        """Fence the underlying WAL (see
        :meth:`repro.storage.wal.WriteAheadLog.fence`): after a standby
        promotion the deposed primary's commits must fail rather than
        diverge.  Any in-flight transaction hits
        :class:`~repro.errors.WalFencedError` on its next log write,
        which the existing storage-error handling turns into an abort."""
        self.wal.fence(reason)

    # -- transaction / pin bookkeeping --------------------------------------

    def forget_txn(self, txn_id: int) -> None:
        """Drop the first-LSN entry of a finished transaction, letting
        future checkpoints advance their recovery floor past it (and
        discard any batch buffer it left behind)."""
        with self._lock:
            self._txn_first.pop(txn_id, None)
            self._buffers.pop(txn_id, None)

    def txn_first_lsns(self) -> dict[int, int]:
        """First LSN per transaction with live records (copy)."""
        with self._lock:
            return dict(self._txn_first)

    def pin(self, key: Hashable, lsn: int) -> None:
        """Hold the recovery floor (and segment GC) at or below ``lsn``
        until :meth:`unpin` — used for in-doubt 2PC branches whose redo
        records must survive until the coordinator decides."""
        with self._lock:
            existing = self._pins.get(key)
            self._pins[key] = lsn if existing is None else min(existing, lsn)

    def unpin(self, key: Hashable) -> None:
        with self._lock:
            self._pins.pop(key, None)

    def pins(self) -> dict[Hashable, int]:
        with self._lock:
            return dict(self._pins)

    # -- reading ------------------------------------------------------------

    def records(self, from_lsn: int = 0) -> list[LogRecord]:
        """All durable+buffered records from ``from_lsn``, in order
        (live view).  Checkpoint markers are internal and filtered out."""
        out = []
        for raw in self.wal.scan(from_lsn):
            body = decode(raw.payload)
            if body["k"] in _CKPT_KINDS:
                continue
            out.append(
                LogRecord(raw.lsn, body["k"], body["t"], body["rm"], body["d"])
            )
        return out

    # -- checkpointing ----------------------------------------------------------

    @property
    def checkpoint_area(self) -> str:
        return self.area + _CHECKPOINT_AREA_SUFFIX

    def bytes_since_checkpoint(self) -> int:
        """Record bytes appended since the last installed checkpoint —
        the checkpointer's trigger.  Measured from the checkpoint-begin
        LSN (not the recovery floor), so one long-running transaction
        cannot livelock the trigger."""
        return self.wal.next_lsn - self._ckpt_base

    def begin_checkpoint(self) -> int:
        """Open a fuzzy checkpoint: roll to a fresh segment and append
        the ``bck`` marker as its first record.  Returns *B*, the
        checkpoint-begin LSN."""
        self.wal.roll()
        return self._append(KIND_BEGIN_CKPT, None, None, {}, flush=False)

    def recovery_floor(self, begin_lsn: int) -> int:
        """Where replay must start for a checkpoint begun at
        ``begin_lsn``: the minimum of *B*, the first LSN of every
        transaction with live records, and every pin.

        Safe to read after the ``bck`` append: any transaction whose
        first record precedes *B* published its entry under the WAL
        lock before that append completed, and any transaction missing
        from the table writes its first record above *B*.
        """
        floor = begin_lsn
        with self._lock:
            for lsn in self._txn_first.values():
                floor = min(floor, lsn)
            for lsn in self._pins.values():
                floor = min(floor, lsn)
        return floor

    def end_checkpoint(self, begin_lsn: int, active: dict[int, int],
                       recovery_lsn: int) -> int:
        """Close the checkpoint with a forced ``eck`` marker carrying
        the active-transaction table (txn id → first LSN) and the
        computed recovery LSN."""
        data = {
            "b": begin_lsn,
            "r": recovery_lsn,
            # codec dict keys must be strings: encode as pairs.
            "active": [[tid, lsn] for tid, lsn in sorted(active.items())],
        }
        return self._append(KIND_END_CKPT, None, None, data, flush=True)

    def install_checkpoint(self, snapshots: dict[str, Any], *,
                           begin_lsn: int, recovery_lsn: int,
                           next_txn_id: int) -> None:
        """Atomically persist the checkpoint blob.  The single
        ``disk.replace`` is the commit point of the whole checkpoint:
        before it the old checkpoint governs recovery, after it the new
        one does, and both are consistent with the (not yet GC'd) log."""
        self.disk.replace(self.checkpoint_area, encode({
            "v": _CHECKPOINT_VERSION,
            "recovery_lsn": recovery_lsn,
            "next_txn_id": next_txn_id,
            "rms": snapshots,
        }))
        self._ckpt_base = begin_lsn

    def gc(self, recovery_lsn: int) -> int:
        """Reclaim sealed segments wholly below ``recovery_lsn``."""
        return self.wal.gc(recovery_lsn)

    def write_checkpoint(self, snapshots: dict[str, Any]) -> None:
        """Quiescent one-shot checkpoint (callers with no concurrent
        transactions): begin, close with an empty active table, install,
        and GC in one call."""
        begin_lsn = self.begin_checkpoint()
        recovery_lsn = self.recovery_floor(begin_lsn)
        self.end_checkpoint(begin_lsn, {}, recovery_lsn)
        self.install_checkpoint(
            snapshots, begin_lsn=begin_lsn, recovery_lsn=recovery_lsn,
            next_txn_id=0,
        )
        self.gc(recovery_lsn)

    def load_checkpoint(self) -> CheckpointImage | None:
        """The installed checkpoint, or None.  Accepts legacy (v1)
        blobs, which have no recovery LSN (replay starts at 0)."""
        raw = self.disk.read(self.checkpoint_area)
        if not raw:
            return None
        try:
            body = decode(raw)
            return CheckpointImage(
                rms=body["rms"],
                recovery_lsn=body.get("recovery_lsn", 0),
                next_txn_id=body.get("next_txn_id", 0),
            )
        except CheckpointError:
            raise
        except Exception as exc:  # codec error -> unusable checkpoint
            raise CheckpointError(f"unreadable checkpoint: {exc}") from exc

    def read_checkpoint(self) -> dict[str, Any] | None:
        """RM snapshots of the installed checkpoint, or None."""
        image = self.load_checkpoint()
        return None if image is None else image.rms

    # -- analysis helpers (used by recovery) ---------------------------------------

    def committed_txns(self, records: Iterable[LogRecord] | None = None) -> set[int]:
        recs = self.records() if records is None else records
        return {r.txn_id for r in recs if r.kind == KIND_COMMIT and r.txn_id is not None}

    def outcome_decisions(self, records: Iterable[LogRecord] | None = None) -> dict[int, str]:
        recs = self.records() if records is None else records
        return {
            r.txn_id: r.data["decision"]
            for r in recs
            if r.kind == KIND_OUTCOME and r.txn_id is not None
        }
