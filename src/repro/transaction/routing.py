"""Routed transactions over repository shards.

A :class:`ShardedTransactionManager` fronts the per-shard
:class:`~repro.transaction.manager.TransactionManager` instances of a
:class:`~repro.queueing.sharded.ShardedRepository`.  Its transactions
(:class:`RoutedTransaction`) begin with **no** branches; the first
operation against a shard lazily opens a branch on that shard's
transaction manager (:meth:`RoutedTransaction.branch_for`).  At commit
time the routing decides the protocol:

* **0 branches** — nothing was logged anywhere; only the routed-level
  hooks fire.
* **1 branch** — the transaction stayed on one shard: it commits with
  that shard's ordinary force-at-commit (one log force, coalesced by
  the shard's group committer).  This is the fast path; placement
  policies exist to make it the common case.
* **≥2 branches** — the transaction spanned shards (e.g. a server
  dequeuing a request on shard A and enqueuing the reply on shard B,
  Figure 5 run across shards): it is automatically promoted to the
  presumed-abort two-phase commit of
  :mod:`repro.transaction.twophase`.  The coordinator is *selected* per
  transaction: the shard of the first-touched branch hosts the decision
  record, so the decision force lands on a log that transaction already
  made hot.

Locks stay per shard — each branch acquires locks from its own shard's
lock manager, so lock traffic never crosses shard boundaries.

The routed transaction implements enough of the
:class:`~repro.transaction.manager.Transaction` surface (``status``,
``require_active``, ``on_commit``/``on_abort``, ``commit``/``abort``)
to be handed to servers and handlers; shard-bound work must reach it
through shard-aware facades (queue views, table views) that resolve the
owning branch first.  Calling ``lock``/``log_update``/``add_undo``
directly on a routed transaction is an error by construction: those
operations have no shard context.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import InvalidTransactionState, TransactionAborted
from repro.obs import Observability, get_observability
from repro.transaction.ids import TxnStatus
from repro.transaction.manager import Transaction, TransactionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transaction.twophase import TwoPhaseCoordinator


class RoutedTransaction:
    """One logical transaction routed across repository shards.

    Not thread-safe, like :class:`~repro.transaction.manager.Transaction`:
    it belongs to the single thread (simulated process) executing it.
    """

    def __init__(self, stm: "ShardedTransactionManager", routed_id: int):
        self.stm = stm
        self.id = ("routed", routed_id)
        self.status = TxnStatus.ACTIVE
        #: shard index -> branch, in first-touch order (Python dicts
        #: preserve insertion order; the first entry selects the
        #: coordinator on promotion to 2PC)
        self._branches: dict[int, Transaction] = {}
        self._on_commit: list[Callable[[], None]] = []
        self._on_abort: list[Callable[[], None]] = []

    # -- shard-facade interface ----------------------------------------

    def branch_for(self, shard: int) -> Transaction:
        """The branch transaction on ``shard``, begun on first touch."""
        self.require_active()
        branch = self._branches.get(shard)
        if branch is None:
            branch = self.stm.shard_tm(shard).begin()
            self._branches[shard] = branch
        return branch

    @property
    def branches(self) -> dict[int, Transaction]:
        """Read-only view of the open branches (for tests/monitoring)."""
        return dict(self._branches)

    @property
    def is_cross_shard(self) -> bool:
        return len(self._branches) > 1

    # -- Transaction surface -------------------------------------------

    def require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise InvalidTransactionState(
                f"routed transaction {self.id} is {self.status.value}, not active"
            )
        # A branch aborted out from under us (Kill_element, deadlock
        # victim): the logical transaction cannot proceed either.
        for branch in self._branches.values():
            if branch.status is TxnStatus.ABORTED:
                raise TransactionAborted(
                    branch.id, "a shard branch was aborted externally"
                )

    def on_commit(self, fn: Callable[[], None]) -> None:
        self._on_commit.append(fn)

    def on_abort(self, fn: Callable[[], None]) -> None:
        self._on_abort.append(fn)

    def lock(self, resource: str, mode: Any) -> None:
        raise InvalidTransactionState(
            "a routed transaction has no shard context for a direct lock; "
            "acquire locks through a shard-bound queue or table facade"
        )

    def log_update(self, rm: str, data: dict[str, Any]) -> int:
        raise InvalidTransactionState(
            "a routed transaction has no shard context for a direct log "
            "write; log through a shard-bound queue or table facade"
        )

    def add_undo(self, fn: Callable[[], None]) -> None:
        raise InvalidTransactionState(
            "a routed transaction has no shard context for a direct undo; "
            "register undos through a shard-bound facade"
        )

    # -- outcomes -------------------------------------------------------

    def commit(self) -> None:
        self.stm.commit(self)

    def abort(self, reason: str = "application abort") -> None:
        self.stm.abort(self, reason)

    def _fire(self, hooks: list[Callable[[], None]]) -> None:
        for hook in hooks:
            hook()
        self._on_commit.clear()
        self._on_abort.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutedTransaction(id={self.id}, status={self.status.value}, "
            f"shards={sorted(self._branches)})"
        )


class ShardedTransactionManager:
    """Transaction manager facade over the shards of one repository.

    Exposes the same lifecycle surface as
    :class:`~repro.transaction.manager.TransactionManager` (``begin`` /
    ``commit`` / ``abort`` / ``transaction`` / ``run``) but yields
    :class:`RoutedTransaction` objects whose commit protocol is chosen
    by how many shards the transaction actually touched.
    """

    def __init__(
        self,
        shard_tms: list[TransactionManager],
        coordinators: list["TwoPhaseCoordinator"],
        obs: Observability | None = None,
        node: str = "sharded",
    ):
        if len(shard_tms) != len(coordinators):
            raise ValueError("one coordinator per shard is required")
        self._tms = shard_tms
        self._coordinators = coordinators
        self._mutex = threading.Lock()
        self._next_id = 1
        #: routed-commit counters for benchmarks
        self.single_shard_commits = 0
        self.cross_shard_commits = 0
        self.empty_commits = 0
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_commits = metrics.counter(
            "sharded_txn_commits_total",
            "routed transaction commits by scope", ("node", "scope"),
        )
        self._m_single = self._m_commits.labels(node=node, scope="single")
        self._m_cross = self._m_commits.labels(node=node, scope="cross")
        self._m_branches = metrics.histogram(
            "sharded_txn_branches",
            "shards touched per routed transaction", ("node",),
            buckets=(1.0, 2.0, 3.0, 4.0, 8.0, 16.0),
        ).labels(node=node)
        self._m_2pc_commit = metrics.histogram(
            "twophase_commit_seconds",
            "full two-phase commit round-trip for one cross-shard "
            "transaction (all prepares + decision force + phase 2)",
            ("node",),
        ).labels(node=node)

    def shard_tm(self, shard: int) -> TransactionManager:
        return self._tms[shard]

    @property
    def shard_count(self) -> int:
        return len(self._tms)

    # -- lifecycle ------------------------------------------------------

    def begin(self) -> RoutedTransaction:
        with self._mutex:
            routed_id = self._next_id
            self._next_id += 1
        return RoutedTransaction(self, routed_id)

    def commit(self, txn: RoutedTransaction) -> None:
        """Commit with the cheapest protocol the branch set allows."""
        txn.require_active()
        branches = [(self._tms[i], b) for i, b in txn._branches.items()]
        if not branches:
            txn.status = TxnStatus.COMMITTED
            self.empty_commits += 1
            txn._fire(txn._on_commit)
            return
        if len(branches) == 1:
            tm, branch = branches[0]
            try:
                tm.commit(branch)
            except BaseException:
                # The branch commit hard-aborted (or the process
                # "crashed"); mirror its outcome at the routed level.
                if branch.status is TxnStatus.ABORTED:
                    txn.status = TxnStatus.ABORTED
                    txn._fire(txn._on_abort)
                raise
            txn.status = TxnStatus.COMMITTED
            self.single_shard_commits += 1
            self._m_single.inc()
            self._m_branches.observe(1.0)
            txn._fire(txn._on_commit)
            return
        # Cross-shard: promote to two-phase commit.  The coordinator is
        # the first-touched shard's, so the decision record is forced on
        # a log this transaction already wrote to.
        coordinator_shard = next(iter(txn._branches))
        coordinator = self._coordinators[coordinator_shard]
        with self._m_2pc_commit.time():
            decision = coordinator.commit(branches)
        self._m_branches.observe(float(len(branches)))
        if decision != "commit":
            txn.status = TxnStatus.ABORTED
            txn._fire(txn._on_abort)
            raise TransactionAborted(
                txn.id, "two-phase commit across shards aborted"
            )
        txn.status = TxnStatus.COMMITTED
        self.cross_shard_commits += 1
        self._m_cross.inc()
        txn._fire(txn._on_commit)

    def abort(self, txn: RoutedTransaction, reason: str = "application abort") -> None:
        if txn.status is TxnStatus.ABORTED:
            return
        if txn.status is TxnStatus.COMMITTED:
            raise InvalidTransactionState(
                f"routed transaction {txn.id} already committed"
            )
        for shard, branch in txn._branches.items():
            if branch.status is TxnStatus.ACTIVE:
                self._tms[shard].abort(branch, reason)
        txn.status = TxnStatus.ABORTED
        txn._fire(txn._on_abort)

    def abort_by_id(self, txn_id: Any, reason: str = "external abort") -> bool:
        """Kill_element support: branch ids are shard-local, so forward
        to every shard until one recognises the id."""
        return any(tm.abort_by_id(txn_id, reason) for tm in self._tms)

    # -- conveniences ---------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[RoutedTransaction]:
        """``with stm.transaction() as txn:`` — commit on success, abort
        on any exception (re-raised); same contract as
        :meth:`~repro.transaction.manager.TransactionManager.transaction`."""
        txn = self.begin()
        try:
            yield txn
        except BaseException as exc:
            if txn.status is TxnStatus.ACTIVE:
                from repro.errors import SimulatedCrash, TwoPhaseInDoubtError

                # A crash means the process is gone; an in-doubt branch
                # means the decision is durably COMMIT but a branch kept
                # its locks.  Neither may fire the abort hooks — the
                # transaction did not abort, and restart recovery will
                # (re)apply its outcome.
                if not isinstance(exc, (SimulatedCrash, TwoPhaseInDoubtError)):
                    self.abort(txn, reason=f"{type(exc).__name__}: {exc}")
            raise
        else:
            if txn.status is TxnStatus.ACTIVE:
                self.commit(txn)
            elif txn.status is TxnStatus.ABORTED:
                raise TransactionAborted(txn.id, "aborted externally")

    def run(self, fn: Callable[[RoutedTransaction], Any], attempts: int = 3) -> Any:
        """Run ``fn`` in a routed transaction, retrying on deadlock."""
        from repro.errors import DeadlockError

        last: Exception | None = None
        for _ in range(attempts):
            try:
                with self.transaction() as txn:
                    return fn(txn)
            except DeadlockError as exc:
                last = exc
        raise TransactionAborted(None, f"deadlock retries exhausted: {last}")

    # -- aggregate counters (benchmark parity with TransactionManager) --

    @property
    def commits(self) -> int:
        return sum(tm.commits for tm in self._tms)

    @property
    def aborts(self) -> int:
        return sum(tm.aborts for tm in self._tms)
