"""Strict two-phase locking with deadlock detection.

The lock manager grants shared (``S``) and exclusive (``X``) locks on
named resources to transaction owners.  Waiting is real (condition
variables), so multi-threaded benchmarks measure genuine contention;
deadlocks are detected by cycle search in the waits-for graph and
resolved by aborting the *requester* (the classic "die" policy, which
is deterministic and starvation-free for our workloads).

Two features exist specifically for the paper's experiments:

* **wait statistics** (:attr:`LockManager.stats`) feed benchmark C1
  (one-transaction vs three-transaction client designs) and C4/C5
  (multi-transaction contention); and
* **instantaneous conflict probes** (:meth:`LockManager.would_block`)
  let the skip-locked dequeue of Section 10 pass over write-locked
  queue elements without blocking.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    """Multi-granularity lock modes.

    ``IS``/``IX`` are intention locks taken on a *table* before locking
    individual keys; ``S`` on a table is what a scan takes, so scans
    conflict with any writer's table-level ``IX`` (no phantoms).
    """

    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"

    def compatible(self, other: "LockMode") -> bool:
        return other in _COMPATIBLE[self]

    def covers(self, other: "LockMode") -> bool:
        """True if holding ``self`` makes a request for ``other`` a no-op."""
        return other in _COVERS[self]

    def join(self, other: "LockMode") -> "LockMode":
        """Least mode at least as strong as both (upgrade target)."""
        if self.covers(other):
            return self
        if other.covers(self):
            return other
        # The only incomparable pair without a SIX mode is {S, IX}.
        return LockMode.X


_COMPATIBLE: dict[LockMode, frozenset[LockMode]] = {
    LockMode.IS: frozenset({LockMode.IS, LockMode.IX, LockMode.S}),
    LockMode.IX: frozenset({LockMode.IS, LockMode.IX}),
    LockMode.S: frozenset({LockMode.IS, LockMode.S}),
    LockMode.X: frozenset(),
}

_COVERS: dict[LockMode, frozenset[LockMode]] = {
    LockMode.IS: frozenset({LockMode.IS}),
    LockMode.IX: frozenset({LockMode.IX, LockMode.IS}),
    LockMode.S: frozenset({LockMode.S, LockMode.IS}),
    LockMode.X: frozenset({LockMode.X, LockMode.S, LockMode.IX, LockMode.IS}),
}


@dataclass
class LockStats:
    """Aggregate contention statistics (benchmark instrumentation)."""

    acquisitions: int = 0
    waits: int = 0
    wait_time: float = 0.0
    deadlocks: int = 0
    timeouts: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "acquisitions": self.acquisitions,
            "waits": self.waits,
            "wait_time": self.wait_time,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
        }


@dataclass
class _LockState:
    """Per-resource state: current holders and their modes."""

    holders: dict[object, LockMode] = field(default_factory=dict)

    def conflicts_with(self, owner: object, mode: LockMode) -> set[object]:
        """Owners (other than ``owner``) whose held mode conflicts with a
        request for ``mode``."""
        return {
            holder
            for holder, held in self.holders.items()
            if holder != owner and not held.compatible(mode)
        }


class LockManager:
    """Blocking lock manager with waits-for deadlock detection.

    Owners are opaque hashable values (transaction ids).  All public
    methods are thread-safe.
    """

    def __init__(self, default_timeout: float | None = 10.0):
        self._mutex = threading.Lock()
        self._granted: dict[str, _LockState] = defaultdict(_LockState)
        self._waits_for: dict[object, set[object]] = {}
        self._cond = threading.Condition(self._mutex)
        self._held_by_owner: dict[object, set[str]] = defaultdict(set)
        self.default_timeout = default_timeout
        self.stats = LockStats()
        #: optional accounting sink (``on_wait``/``on_deadlock``/
        #: ``on_timeout``) — installed by the owning concurrency-control
        #: strategy (:class:`repro.transaction.cc.TwoPhaseLockingCC`),
        #: which owns the contention metrics.  The lock table itself
        #: stays metrics-free so a node that never locks reports zeros.
        self.sink = None

    # -- acquisition ---------------------------------------------------------

    def acquire(
        self,
        owner: object,
        resource: str,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``owner``.

        Blocks until granted.  Raises :class:`DeadlockError` if waiting
        would close a cycle in the waits-for graph, or
        :class:`LockTimeoutError` on timeout.
        """
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            state = self._granted[resource]
            held = state.holders.get(owner)
            if held is not None and held.covers(mode):
                return  # already sufficient
            # An upgrade may land on a mode stronger than requested
            # (e.g. S + IX -> X, absent a SIX mode): the conflict check
            # must use that target, or the upgrade grants more than the
            # other holders allow.
            target = mode if held is None else held.join(mode)
            waited = False
            wait_start = 0.0
            while True:
                blockers = state.conflicts_with(owner, target)
                if not blockers:
                    break
                self._waits_for[owner] = blockers
                if self._detects_cycle(owner):
                    del self._waits_for[owner]
                    self.stats.deadlocks += 1
                    if self.sink is not None:
                        self.sink.on_deadlock()
                    raise DeadlockError(
                        f"{owner} waiting for {sorted(map(str, blockers))} on "
                        f"{resource!r} closes a waits-for cycle"
                    )
                if not waited:
                    waited = True
                    wait_start = time.monotonic()
                    self.stats.waits += 1
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    del self._waits_for[owner]
                    elapsed = time.monotonic() - wait_start
                    self.stats.timeouts += 1
                    self.stats.wait_time += elapsed
                    if self.sink is not None:
                        self.sink.on_timeout()
                        self.sink.on_wait(elapsed)
                    raise LockTimeoutError(
                        f"{owner} timed out waiting for {mode.value} on {resource!r}"
                    )
                # Cap each wait so the waits-for graph is re-examined
                # periodically even if no notify arrives (a cycle can
                # form while this owner sleeps).
                self._cond.wait(timeout=0.05 if remaining is None else min(remaining, 0.05))
            self._waits_for.pop(owner, None)
            if waited:
                elapsed = time.monotonic() - wait_start
                self.stats.wait_time += elapsed
                if self.sink is not None:
                    self.sink.on_wait(elapsed)
            state.holders[owner] = target
            self._held_by_owner[owner].add(resource)
            self.stats.acquisitions += 1

    def would_block(self, owner: object, resource: str, mode: LockMode) -> bool:
        """True if an ``acquire`` by ``owner`` would have to wait right now.
        Used by skip-locked dequeue (Section 10)."""
        with self._mutex:
            state = self._granted.get(resource)
            if state is None:
                return False
            held = state.holders.get(owner)
            if held is not None and held.covers(mode):
                return False
            target = mode if held is None else held.join(mode)
            return bool(state.conflicts_with(owner, target))

    def try_acquire(self, owner: object, resource: str, mode: LockMode) -> bool:
        """Non-blocking acquire; returns False instead of waiting."""
        with self._cond:
            state = self._granted[resource]
            held = state.holders.get(owner)
            if held is not None and held.covers(mode):
                return True
            target = mode if held is None else held.join(mode)
            if state.conflicts_with(owner, target):
                return False
            state.holders[owner] = target
            self._held_by_owner[owner].add(resource)
            self.stats.acquisitions += 1
            return True

    # -- release -------------------------------------------------------------

    def release_all(self, owner: object) -> None:
        """Release every lock held by ``owner`` (end of transaction —
        strict 2PL releases only here)."""
        with self._cond:
            for resource in self._held_by_owner.pop(owner, set()):
                state = self._granted.get(resource)
                if state is not None:
                    state.holders.pop(owner, None)
                    if not state.holders:
                        del self._granted[resource]
            self._cond.notify_all()

    def transfer(self, from_owner: object, to_owner: object) -> list[str]:
        """Re-own every lock of ``from_owner`` to ``to_owner``.

        Implements Section 6's *lock inheritance*: "each transaction's
        database locks are inherited by the next transaction in the
        sequence".  Returns the transferred resource names.
        """
        with self._cond:
            resources = self._held_by_owner.pop(from_owner, set())
            for resource in resources:
                state = self._granted.get(resource)
                if state is not None and from_owner in state.holders:
                    mode = state.holders.pop(from_owner)
                    existing = state.holders.get(to_owner)
                    state.holders[to_owner] = (
                        mode if existing is None else existing.join(mode)
                    )
                    self._held_by_owner[to_owner].add(resource)
            self._cond.notify_all()
            return sorted(resources)

    # -- introspection ---------------------------------------------------------

    def holders(self, resource: str) -> dict[object, LockMode]:
        with self._mutex:
            state = self._granted.get(resource)
            return dict(state.holders) if state else {}

    def held_by(self, owner: object) -> set[str]:
        with self._mutex:
            return set(self._held_by_owner.get(owner, set()))

    # -- deadlock detection -----------------------------------------------------

    def _detects_cycle(self, start: object) -> bool:
        """DFS through waits-for edges; blockers that are themselves
        waiting contribute their own edges."""
        seen: set[object] = set()
        stack = list(self._waits_for.get(start, ()))
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False
