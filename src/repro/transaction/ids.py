"""Transaction identifiers and states."""

from __future__ import annotations

import enum

#: Transaction ids are plain integers, unique per transaction manager.
#: Cross-node (two-phase commit) transactions get a *global* id string
#: of the form ``"<coordinator>:<local id>"``.
TxnId = int


class TxnStatus(enum.Enum):
    """Life-cycle of a transaction.

    ``PREPARED`` exists only for two-phase-commit branches: the branch
    is durable and holds its locks, awaiting the coordinator's decision.
    """

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def terminal(self) -> bool:
        return self in (TxnStatus.COMMITTED, TxnStatus.ABORTED)
