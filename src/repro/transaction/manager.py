"""Transaction manager: begin / commit / abort with strict 2PL.

Design (see DESIGN.md §5):

* **Redo-only WAL, in-memory undo.**  An RM applies each update to its
  volatile state immediately after logging a redo record.  Commit
  writes + forces one ``cmt`` record (force-at-commit); the force goes
  through the node's group-commit coordinator
  (:mod:`repro.storage.groupcommit`), so concurrent committers share a
  single flush while ``commit()`` still returns only after the record
  is durable.  Abort runs the transaction's in-memory undo stack in
  reverse.  A crash simply discards volatile state; recovery replays
  only committed records, so uncommitted work vanishes with no undo
  pass.
* **Strict two-phase locking.**  Locks are acquired through the
  transaction and released only at commit/abort (or transferred to a
  successor — Section 6's lock inheritance).
* **Hooks.**  ``on_commit`` / ``on_abort`` callbacks run after the
  outcome is decided and logged; the queue manager uses them to make
  elements visible, wake blocked dequeuers, return aborted dequeues to
  their queue, and bump durable abort counters for the error-queue
  bound of Section 4.2.

Crash points (for the crash-at-every-step harness):

* ``tm.commit.before_log`` — all work done, commit record not yet
  durable: the transaction must roll back at recovery.
* ``tm.commit.after_log`` — commit record durable, hooks/locks not yet
  processed: the transaction must be durable at recovery.
* ``tm.abort.before_undo`` / ``tm.abort.after_undo``.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import InvalidTransactionState, StorageError, TransactionAborted
from repro.obs import Observability, get_observability
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.transaction.cc import ConcurrencyControl, TwoPhaseLockingCC
from repro.transaction.ids import TxnStatus
from repro.transaction.locks import LockManager, LockMode
from repro.transaction.log import LogManager


class Transaction:
    """One transaction.  Not thread-safe: a transaction belongs to the
    single thread (simulated process) executing it."""

    def __init__(
        self,
        tm: "TransactionManager",
        txn_id: int,
        cc: ConcurrencyControl | None = None,
    ):
        self.tm = tm
        self.id = txn_id
        #: concurrency-control strategy this transaction runs under;
        #: defaults to the manager's (strict 2PL), overridden per
        #: transaction by the deterministic lane.
        self.cc = cc if cc is not None else tm.cc
        self.status = TxnStatus.ACTIVE
        self._undo: list[Callable[[], None]] = []
        self._on_commit: list[Callable[[], None]] = []
        self._on_abort: list[Callable[[], None]] = []
        #: global id when this is a two-phase-commit branch
        self.global_id: str | None = None
        #: begin time for the txn-duration histogram (set iff observing)
        self._started: float | None = _time.perf_counter() if tm._obs_on else None

    # -- resource-manager interface -----------------------------------------

    def require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise InvalidTransactionState(
                f"transaction {self.id} is {self.status.value}, not active"
            )

    def lock(self, resource: str, mode: LockMode) -> None:
        """Acquire a lock on behalf of this transaction (strict 2PL:
        released only at end of transaction)."""
        self.require_active()
        try:
            self.cc.acquire(self.id, resource, mode)
        except Exception:
            # Deadlock/timeout: caller decides whether to abort; the lock
            # was not granted, so no cleanup is needed here.
            raise

    def log_update(self, rm: str, data: dict[str, Any]) -> int:
        self.require_active()
        return self.tm.log.log_update(self.id, rm, data)

    def add_undo(self, fn: Callable[[], None]) -> None:
        """Register a closure that reverses one volatile update."""
        self.require_active()
        self._undo.append(fn)

    def on_commit(self, fn: Callable[[], None]) -> None:
        self._on_commit.append(fn)

    def on_abort(self, fn: Callable[[], None]) -> None:
        self._on_abort.append(fn)

    # -- outcomes -------------------------------------------------------------

    def commit(self) -> None:
        self.tm.commit(self)

    def abort(self, reason: str = "application abort") -> None:
        self.tm.abort(self, reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Transaction(id={self.id}, status={self.status.value})"


class TransactionManager:
    """Per-node transaction manager."""

    def __init__(
        self,
        log: LogManager,
        locks: LockManager | None = None,
        injector: FaultInjector | None = None,
        obs: Observability | None = None,
        node: str = "node",
    ):
        self.log = log
        self.locks = locks if locks is not None else LockManager()
        #: default concurrency-control strategy (strict 2PL over the
        #: node's lock table); individual transactions may carry a
        #: different strategy (``begin(cc=...)``).
        self.cc: ConcurrencyControl = TwoPhaseLockingCC(self.locks, obs=obs)
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._next_id = 1
        self._mutex = threading.Lock()
        self._active: dict[int, Transaction] = {}
        #: counters for benchmarks
        self.commits = 0
        self.aborts = 0
        obs = obs if obs is not None else get_observability()
        self._obs_on = obs.enabled
        self._node = node
        self._flight = obs.flight
        metrics = obs.metrics
        self._m_commits = metrics.counter(
            "txn_commits_total", "committed transactions", ("node",)
        ).labels(node=node)
        self._m_aborts = metrics.counter(
            "txn_aborts_total", "aborted transactions", ("node",)
        ).labels(node=node)
        self._m_active = metrics.gauge(
            "txn_active", "currently active transactions", ("node",)
        ).labels(node=node)
        self._m_duration = metrics.histogram(
            "txn_duration_seconds", "begin-to-outcome transaction time", ("node",)
        ).labels(node=node)
        self._lane_counter = metrics.counter(
            "txn_lane_total",
            "transactions completed per concurrency-control lane",
            ("node", "lane"),
        )
        self._m_lane: dict[str, Any] = {}
        if self._obs_on:
            self._m_active.set_function(lambda: len(self._active))

    # -- lifecycle -------------------------------------------------------------

    def begin(self, cc: ConcurrencyControl | None = None) -> Transaction:
        with self._mutex:
            txn_id = self._next_id
            self._next_id += 1
            txn = Transaction(self, txn_id, cc=cc)
            self._active[txn_id] = txn
            return txn

    def set_next_id(self, next_id: int) -> None:
        """Recovery hook: resume ids after the highest one in the log so
        restarted nodes never reuse a transaction id."""
        with self._mutex:
            self._next_id = max(self._next_id, next_id)

    def commit(self, txn: Transaction) -> None:
        """Commit: force the log (coalesced with concurrent commits by
        the group committer), then release locks and fire hooks."""
        txn.require_active()
        self.injector.reach("tm.commit.before_log")
        try:
            self.log.log_commit(txn.id)
        except StorageError as exc:
            # The commit record may or may not be durable (the WAL has
            # panicked, so no later flush can quietly promote it).  The
            # transaction cannot be acknowledged: abort it so its locks
            # are released and its volatile effects are undone, and let
            # the storage error reach the caller.  If the record *did*
            # reach the platter, recovery will redo the work — the
            # request-level idempotence of the queue protocols absorbs
            # that, exactly as it absorbs a crash after ``after_log``.
            self._hard_abort(txn, f"commit force failed: {exc}")
            raise
        self.injector.reach("tm.commit.after_log")
        txn.status = TxnStatus.COMMITTED
        if self._obs_on:
            self._flight.record("txn.commit", node=self._node, txn=txn.id)
        self._finish(txn, txn._on_commit)
        self.commits += 1
        self._observe_outcome(txn, self._m_commits)

    def abort(self, txn: Transaction, reason: str = "application abort") -> None:
        """Abort: reverse volatile effects, then release locks and fire
        abort hooks (queue elements return to their queues here)."""
        if txn.status is TxnStatus.ABORTED:
            return
        if txn.status is TxnStatus.COMMITTED:
            raise InvalidTransactionState(f"transaction {txn.id} already committed")
        self.injector.reach("tm.abort.before_undo")
        for undo in reversed(txn._undo):
            undo()
        self.injector.reach("tm.abort.after_undo")
        try:
            self.log.log_abort(txn.id, reason)
        except StorageError:
            # The abort record is an optimization (recovery treats a
            # missing outcome as abort), so a failing log must not block
            # the undo/lock-release path — that would wedge the node.
            pass
        txn.status = TxnStatus.ABORTED
        if self._obs_on:
            self._flight.record("txn.abort", node=self._node, txn=txn.id,
                                reason=reason)
        self._finish(txn, txn._on_abort)
        self.aborts += 1
        self._observe_outcome(txn, self._m_aborts)

    def _hard_abort(self, txn: Transaction, reason: str) -> None:
        """Abort after a failed commit force: undo, release, and report
        — without requiring the (possibly panicked) log to cooperate."""
        for undo in reversed(txn._undo):
            undo()
        try:
            self.log.log_abort(txn.id, reason)
        except StorageError:
            pass
        txn.status = TxnStatus.ABORTED
        if self._obs_on:
            self._flight.record("txn.hard_abort", node=self._node,
                                txn=txn.id, reason=reason)
        self._finish(txn, txn._on_abort)
        self.aborts += 1
        self._observe_outcome(txn, self._m_aborts)

    def _observe_outcome(self, txn: Transaction, counter) -> None:
        counter.inc()
        lane = txn.cc.lane
        m_lane = self._m_lane.get(lane)
        if m_lane is None:
            m_lane = self._lane_counter.labels(node=self._node, lane=lane)
            self._m_lane[lane] = m_lane
        m_lane.inc()
        if txn._started is not None:
            self._m_duration.observe(_time.perf_counter() - txn._started)

    def abort_by_id(self, txn_id: int, reason: str = "external abort") -> bool:
        """Abort an active transaction by id.

        Used by Section 7's Kill_element: "If it was dequeued by a
        transaction that has not yet committed, the transaction is
        aborted".  Returns False if no such active transaction exists.
        The owning process discovers the abort on its next operation
        (``require_active`` raises).
        """
        with self._mutex:
            txn = self._active.get(txn_id)
        if txn is None:
            return False
        self.abort(txn, reason)
        return True

    def active_txns(self) -> list[int]:
        """Ids of currently active (incl. prepared) transactions — the
        active-transaction table a fuzzy checkpoint records."""
        with self._mutex:
            return sorted(self._active)

    def next_txn_id(self) -> int:
        """The id the next ``begin()`` would hand out — the watermark a
        checkpoint persists so restarted nodes never reuse ids whose
        records were GC'd with their segments."""
        with self._mutex:
            return self._next_id

    def _finish(self, txn: Transaction, hooks: list[Callable[[], None]]) -> None:
        # Hooks run while locks are still held so that, e.g., a returned
        # queue element becomes visible atomically with the lock release
        # that follows.  They run *before* the transaction leaves the
        # active table: a fuzzy checkpoint that no longer sees the
        # transaction as active may rely on its snapshot-visible effects
        # being final (the RMs' committed-view snapshot bookkeeping is
        # cleaned up by these hooks).
        for hook in hooks:
            hook()
        with self._mutex:
            self._active.pop(txn.id, None)
        self.log.forget_txn(txn.id)
        txn.cc.release_all(txn.id)
        txn._undo.clear()

    # -- two-phase-commit branch support ------------------------------------------

    def prepare(self, txn: Transaction, global_id: str) -> None:
        """Make the branch durable while keeping its locks (2PC phase 1)."""
        txn.require_active()
        locks = sorted(txn.cc.held_by(txn.id))
        self.injector.reach("tm.prepare.before_log")
        self.log.log_prepare(txn.id, global_id, locks)
        self.injector.reach("tm.prepare.after_log")
        txn.status = TxnStatus.PREPARED
        txn.global_id = global_id
        if self._obs_on:
            self._flight.record("txn.prepare", node=self._node, txn=txn.id,
                                gid=global_id)

    def commit_prepared(self, txn: Transaction) -> None:
        if txn.status is not TxnStatus.PREPARED:
            raise InvalidTransactionState(
                f"transaction {txn.id} is {txn.status.value}, not prepared"
            )
        self.log.log_outcome(txn.id, "commit")
        txn.status = TxnStatus.COMMITTED
        if self._obs_on:
            self._flight.record("txn.commit_prepared", node=self._node,
                                txn=txn.id, gid=txn.global_id)
        self._finish(txn, txn._on_commit)
        self.commits += 1
        self._observe_outcome(txn, self._m_commits)

    def abort_prepared(self, txn: Transaction) -> None:
        if txn.status is not TxnStatus.PREPARED:
            raise InvalidTransactionState(
                f"transaction {txn.id} is {txn.status.value}, not prepared"
            )
        self.log.log_outcome(txn.id, "abort")
        for undo in reversed(txn._undo):
            undo()
        txn.status = TxnStatus.ABORTED
        if self._obs_on:
            self._flight.record("txn.abort_prepared", node=self._node,
                                txn=txn.id, gid=txn.global_id)
        self._finish(txn, txn._on_abort)
        self.aborts += 1
        self._observe_outcome(txn, self._m_aborts)

    # -- conveniences ---------------------------------------------------------------

    @contextmanager
    def transaction(
        self, cc: ConcurrencyControl | None = None
    ) -> Iterator[Transaction]:
        """``with tm.transaction() as txn:`` — commit on success, abort on
        any exception (the exception is re-raised)."""
        txn = self.begin(cc=cc)
        try:
            yield txn
        except BaseException as exc:
            if txn.status is TxnStatus.ACTIVE:
                # A SimulatedCrash must not trigger a graceful abort: the
                # "process" is gone.  Volatile state is discarded wholesale
                # by the harness, which is equivalent.
                from repro.errors import SimulatedCrash

                if not isinstance(exc, SimulatedCrash):
                    self.abort(txn, reason=f"{type(exc).__name__}: {exc}")
            raise
        else:
            if txn.status is TxnStatus.ACTIVE:
                self.commit(txn)
            elif txn.status is TxnStatus.ABORTED:
                # Externally aborted (e.g. Kill_element) while the body
                # ran: the work is gone, the caller must know.
                raise TransactionAborted(txn.id, "aborted externally")

    def run(self, fn: Callable[[Transaction], Any], attempts: int = 3) -> Any:
        """Run ``fn`` in a transaction, retrying on deadlock up to
        ``attempts`` times."""
        from repro.errors import DeadlockError

        last: Exception | None = None
        for _ in range(attempts):
            try:
                with self.transaction() as txn:
                    return fn(txn)
            except DeadlockError as exc:
                last = exc
        raise TransactionAborted(None, f"deadlock retries exhausted: {last}")
