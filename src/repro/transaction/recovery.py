"""Restart recovery.

After a crash a node's volatile state is gone.  Recovery rebuilds it:

1. load the latest checkpoint (if any) into each resource manager;
2. scan the log **from the checkpoint's recovery LSN** (0 without a
   checkpoint — fuzzy checkpoints record the minimum of their begin
   LSN and the first LSN of every then-active or in-doubt transaction,
   so nothing below it is ever needed), classifying transactions into
   *committed* (``cmt`` record, or ``prep`` followed by a commit
   ``out``-come), *aborted/forgotten* (everything else), and *in doubt*
   (``prep`` without an outcome — a two-phase-commit branch awaiting
   its coordinator);
3. replay, in log order, the ``upd`` records of committed transactions
   and every ``auto`` record (RM redo is idempotent, so records already
   captured by the checkpoint are harmless);
4. stash the updates of in-doubt branches, re-acquire their locks, and
   *pin* their first LSN in the log manager so segment GC cannot
   reclaim their redo records before the coordinator's decision
   arrives (resolved via :meth:`InDoubtBranch.resolve`, which unpins).

This is the standard redo-only counterpart of ARIES for a no-steal
volatile cache: no undo pass is ever needed because uncommitted work
never reaches stable state.

An unreadable checkpoint (:class:`~repro.errors.CheckpointError`) is
survivable only while the full log is still on disk: recovery then
falls back to a full-history replay from LSN 0.  Once segment GC has
reclaimed the prefix the checkpoint covered, the error propagates —
truncating silently there would resurrect a partial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.transaction.locks import LockManager, LockMode
from repro.transaction.log import (
    KIND_AUTO,
    KIND_COMMIT,
    KIND_OUTCOME,
    KIND_PREPARE,
    KIND_UPDATE,
    LogManager,
    LogRecord,
)
from repro.transaction.manager import TransactionManager
from repro.transaction.resource import ResourceManager


@dataclass
class InDoubtBranch:
    """A prepared two-phase-commit branch awaiting its coordinator.

    Holds the branch's redo records and its re-acquired locks; call
    :meth:`resolve` with the coordinator's decision.
    """

    txn_id: int
    global_id: str
    locks: list[str]
    updates: list[LogRecord] = field(default_factory=list)
    _log: LogManager | None = None
    _rms: dict[str, ResourceManager] | None = None
    _lock_manager: LockManager | None = None
    resolved: str | None = None

    def resolve(self, decision: str) -> None:
        """Apply the coordinator's decision: ``"commit"`` replays the
        branch's updates; either way the outcome is logged, the
        branch's locks are released, and its GC pin is dropped."""
        if self.resolved is not None:
            return
        if decision not in ("commit", "abort"):
            raise ValueError(f"decision must be 'commit' or 'abort', got {decision!r}")
        assert self._log is not None and self._rms is not None
        if decision == "commit":
            for record in self.updates:
                rm = self._rms.get(record.rm or "")
                if rm is not None:
                    rm.redo(record.data)
        self._log.log_outcome(self.txn_id, decision)
        self._log.unpin(("indoubt", self.txn_id))
        if self._lock_manager is not None:
            self._lock_manager.release_all(("indoubt", self.txn_id))
        self.resolved = decision


@dataclass
class RecoveryReport:
    """What recovery found and did."""

    checkpoint_loaded: bool
    committed: set[int]
    replayed_updates: int
    replayed_autos: int
    in_doubt: list[InDoubtBranch]
    max_txn_id: int
    #: where the log scan started (0 = full-history replay)
    recovery_lsn: int = 0

    @property
    def replayed_records(self) -> int:
        return self.replayed_updates + self.replayed_autos


def recover(
    log: LogManager,
    rms: dict[str, ResourceManager],
    tm: TransactionManager | None = None,
    lock_manager: LockManager | None = None,
) -> RecoveryReport:
    """Rebuild the volatile state of every RM in ``rms`` from the
    checkpoint and the log suffix above its recovery LSN.

    ``tm`` (if given) has its transaction-id counter advanced past every
    id seen in the log (and past the checkpoint's watermark, which may
    exceed anything still in the log after GC).  ``lock_manager`` (if
    given) re-acquires the locks of in-doubt branches under the
    synthetic owner ``("indoubt", txn_id)``.
    """
    try:
        image = log.load_checkpoint()
    except CheckpointError:
        if log.wal.oldest_lsn() > 0:
            # The records the checkpoint covered are gone — a full
            # replay is impossible, so the damage is unrecoverable.
            raise
        image = None
    checkpoint_loaded = image is not None
    recovery_lsn = 0
    next_txn_id = 0
    if image is not None:
        recovery_lsn = image.recovery_lsn
        next_txn_id = image.next_txn_id
        for name, state in image.rms.items():
            rm = rms.get(name)
            if rm is not None:
                rm.restore(state)

    records = log.records(from_lsn=recovery_lsn)
    committed = {r.txn_id for r in records if r.kind == KIND_COMMIT and r.txn_id is not None}
    outcomes = {
        r.txn_id: r.data["decision"]
        for r in records
        if r.kind == KIND_OUTCOME and r.txn_id is not None
    }
    prepared: dict[int, LogRecord] = {
        r.txn_id: r
        for r in records
        if r.kind == KIND_PREPARE and r.txn_id is not None
    }
    committed |= {tid for tid, decision in outcomes.items() if decision == "commit"}
    in_doubt_ids = {tid for tid in prepared if tid not in outcomes}

    branches = {
        tid: InDoubtBranch(
            txn_id=tid,
            global_id=prepared[tid].data["gid"],
            locks=list(prepared[tid].data["locks"]),
            _log=log,
            _rms=rms,
            _lock_manager=lock_manager,
        )
        for tid in in_doubt_ids
    }

    replayed_updates = 0
    replayed_autos = 0
    max_txn_id = 0
    for record in records:
        if record.txn_id is not None:
            max_txn_id = max(max_txn_id, record.txn_id)
        if record.kind == KIND_UPDATE:
            if record.txn_id in committed:
                rm = rms.get(record.rm or "")
                if rm is not None:
                    rm.redo(record.data)
                    replayed_updates += 1
            elif record.txn_id in in_doubt_ids:
                branches[record.txn_id].updates.append(record)
        elif record.kind == KIND_AUTO:
            rm = rms.get(record.rm or "")
            if rm is not None:
                rm.redo(record.data)
                replayed_autos += 1

    if tm is not None:
        tm.set_next_id(max(max_txn_id + 1, next_txn_id))
    for branch in branches.values():
        # Pin each unresolved branch at its earliest record so segment
        # GC keeps the redo records until the coordinator decides.
        first = min(
            [record.lsn for record in branch.updates]
            + [prepared[branch.txn_id].lsn]
        )
        log.pin(("indoubt", branch.txn_id), first)
    if lock_manager is not None:
        for branch in branches.values():
            for resource in branch.locks:
                lock_manager.acquire(("indoubt", branch.txn_id), resource, LockMode.X)

    return RecoveryReport(
        checkpoint_loaded=checkpoint_loaded,
        committed=committed,
        replayed_updates=replayed_updates,
        replayed_autos=replayed_autos,
        in_doubt=sorted(branches.values(), key=lambda b: b.txn_id),
        max_txn_id=max_txn_id,
        recovery_lsn=recovery_lsn,
    )
