"""QueCC-style deterministic execution lane.

Queue-shaped transactions — a single enqueue or dequeue against one
queue — are the textbook case where *planning* beats locking (Qadah's
queue-oriented transaction processing, PAPERS.md): instead of letting
concurrent auto-commit transactions fight over the queue head with
locks and aborts, the lane **plans** incoming intents into a per-shard
ordered queue and **executes** each plan serially.  Conflicts are
impossible by construction, so execution acquires no locks
(:class:`~repro.transaction.cc.DeterministicCC`) and never aborts on
contention.

Draining reuses the submitting thread: the first submitter on an idle
shard becomes that shard's executor and drains the plan — including
intents that arrive while it runs — as a sequence of *batches*, each
batch one transaction on the shard's ordinary
:class:`~repro.transaction.manager.TransactionManager`.  Followers
park on an event and are handed their result when their batch commits,
so N contended intents share a single commit force instead of N.
Because no extra threads exist, a single-threaded caller (the chaos
engine) sees fully deterministic batch-of-one execution.

Recovery cannot tell the lanes apart: a batch writes the same ``upd``
records through the same :class:`~repro.transaction.log.LogManager`
batching, ends in the same ``cmt``/``abt`` record, and honors the same
checkpoint contract as the 2PL lane.

Crash points, bracketing a plan batch for the chaos harness:

* ``det.plan.batch.before`` — intents planned, nothing logged: the
  whole batch must vanish at recovery.
* ``det.plan.batch.after`` — batch commit durable, results not yet
  returned: the whole batch must survive recovery (the request-level
  idempotence of the queue protocols absorbs the lost replies).
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Any, Callable

from repro.errors import ElementLockedError, QueueEmpty, SimulatedCrash
from repro.obs import Observability, get_observability
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.transaction.cc import DeterministicCC
from repro.transaction.ids import TxnStatus

#: crash points at plan-batch boundaries (sampled by the chaos
#: scheduler when the ``cc`` knob is set)
DET_PLAN_CRASH_POINTS = (
    "det.plan.batch.before",
    "det.plan.batch.after",
)

#: per-intent failures with no partial effects: both raise before the
#: first redo record / undo registration of the operation, so they are
#: safe to absorb inside a batch without poisoning its siblings.
_SOFT_ERRORS = (QueueEmpty, ElementLockedError)


class _Intent:
    """One planned operation: a closure to run inside a batch txn."""

    __slots__ = ("kind", "queue", "fn", "result", "error", "done", "t_submit")

    def __init__(self, kind: str, queue: str, fn: Callable, t_submit: float | None):
        self.kind = kind
        self.queue = queue
        self.fn = fn
        self.result: Any = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.t_submit = t_submit


class _ShardPlan:
    """Ordered plan queue of one shard, plus its drain state."""

    __slots__ = ("repo", "mutex", "pending", "draining")

    def __init__(self, repo):
        self.repo = repo
        self.mutex = threading.Lock()
        self.pending: deque[_Intent] = deque()
        self.draining = False


class DeterministicLane:
    """Planner + executor for auto-routed queue-shaped transactions.

    ``repo`` may be a :class:`~repro.queueing.sharded.ShardedRepository`
    (one plan per shard) or a plain
    :class:`~repro.queueing.repository.QueueRepository` (one plan).
    The lane is rebuilt whenever its node reboots, so plan state is
    volatile by design — exactly like the unsubmitted requests of the
    processes it serves.
    """

    def __init__(
        self,
        repo,
        obs: Observability | None = None,
        injector: FaultInjector | None = None,
        max_batch: int = 64,
    ):
        self.repo = repo
        self.max_batch = max_batch
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._cc = DeterministicCC()
        shards = getattr(repo, "shards", None)
        self._plans = [_ShardPlan(s) for s in (shards if shards else [repo])]
        obs = obs if obs is not None else get_observability()
        self._obs_on = obs.enabled
        metrics = obs.metrics
        self._m_batch = metrics.histogram(
            "det_plan_batch_size", "intents executed per deterministic plan batch"
        )
        self._m_wait = metrics.histogram(
            "det_plan_wait_seconds",
            "submit-to-execution wait of a deterministic intent",
        )

    # -- planning --------------------------------------------------------------

    def _plan_for(self, qname: str) -> _ShardPlan:
        if len(self._plans) == 1:
            return self._plans[0]
        return self._plans[self.repo.shard_of(qname)]

    def submit(self, qname: str, kind: str, fn: Callable) -> Any:
        """Plan one intent and return its result (or raise its error).

        ``fn(shard_repo, txn)`` runs inside the batch transaction of
        the shard owning ``qname``; the submitting thread either drains
        the plan itself (idle shard) or parks until its batch commits.
        """
        plan = self._plan_for(qname)
        intent = _Intent(
            kind, qname, fn, _time.perf_counter() if self._obs_on else None
        )
        with plan.mutex:
            plan.pending.append(intent)
            leader = not plan.draining
            if leader:
                plan.draining = True
        if leader:
            self._drain(plan)
        else:
            intent.done.wait()
        if intent.error is not None:
            raise intent.error
        return intent.result

    # -- execution -------------------------------------------------------------

    def _next_batch(self, plan: _ShardPlan) -> list[_Intent]:
        """Pop the next batch, or release drainership when the plan is
        empty (both under one mutex hold, so no submitter is orphaned).

        A batch never carries two dequeues of the same queue: inside
        one transaction the second would see the first's element
        DEQ_PENDING (a state no 2PL auto-commit dequeue can observe),
        so repeats start the next batch instead.
        """
        with plan.mutex:
            batch: list[_Intent] = []
            dequeued: set[str] = set()
            while plan.pending and len(batch) < self.max_batch:
                head = plan.pending[0]
                if head.kind == "deq":
                    if head.queue in dequeued:
                        break
                    dequeued.add(head.queue)
                batch.append(plan.pending.popleft())
            if not batch:
                plan.draining = False
            return batch

    def _drain(self, plan: _ShardPlan) -> None:
        while True:
            batch = self._next_batch(plan)
            if not batch:
                return
            try:
                self._execute(plan, batch)
            except BaseException as exc:
                # The node is in trouble (crash, WAL panic): fail every
                # planned-but-unexecuted intent and release drainership
                # so no follower waits forever, then let the leader's
                # caller see the original failure.
                with plan.mutex:
                    leftover = list(plan.pending)
                    plan.pending.clear()
                    plan.draining = False
                for intent in leftover:
                    if intent.error is None:
                        intent.error = exc
                    intent.done.set()
                raise
            finally:
                for intent in batch:
                    intent.done.set()

    def _execute(self, plan: _ShardPlan, batch: list[_Intent]) -> None:
        if self._obs_on:
            now = _time.perf_counter()
            for intent in batch:
                if intent.t_submit is not None:
                    self._m_wait.observe(now - intent.t_submit)
        self._injector.reach("det.plan.batch.before")
        tm = plan.repo.tm
        txn = tm.begin(cc=self._cc)
        effects = 0
        try:
            for intent in batch:
                try:
                    intent.result = intent.fn(plan.repo, txn)
                    effects += 1
                except _SOFT_ERRORS as exc:
                    intent.error = exc
            if effects:
                tm.commit(txn)
            else:
                # All intents were no-ops (e.g. empty polls): mirror the
                # 2PL auto-commit path, which aborts on QueueEmpty.
                tm.abort(txn, "deterministic plan batch: no effects")
        except BaseException as exc:
            if txn.status is TxnStatus.ACTIVE and not isinstance(
                exc, SimulatedCrash
            ):
                tm.abort(txn, f"{type(exc).__name__}: {exc}")
            for intent in batch:
                intent.result = None
                if intent.error is None:
                    intent.error = exc
            raise
        self._injector.reach("det.plan.batch.after")
        if self._obs_on:
            self._m_batch.observe(len(batch))
