"""Pluggable concurrency-control strategies.

The transaction manager (:mod:`repro.transaction.manager`) owns
transaction *logic* — ids, WAL logging, the recovery contract, 2PC
branch bookkeeping — while everything about how concurrent
transactions are isolated from one another lives behind the
:class:`ConcurrencyControl` interface defined here.  Two strategies
exist:

* :class:`TwoPhaseLockingCC` wraps the strict-2PL
  :class:`~repro.transaction.locks.LockManager` (the seed behavior,
  unchanged) and owns the lock-contention metrics
  (``lock_wait_seconds``, ``lock_deadlocks_total``,
  ``lock_timeouts_total``), fed through the lock manager's accounting
  sink.  Owning the metrics here — not in the lock table — means a
  node that never locks reports zeros instead of misleading stale
  series.
* :class:`DeterministicCC` is the no-op strategy used by the
  deterministic execution lane
  (:mod:`repro.transaction.deterministic`): plan-queue ordering makes
  conflicts impossible by construction, so every acquisition is
  granted instantly and end-of-transaction release has nothing to do.

A transaction carries its strategy (``txn.cc`` — per-transaction, so
lanes coexist on one transaction manager and one WAL); the manager
acquires, releases, and enumerates held resources only through it.
"""

from __future__ import annotations

from repro.obs import Observability, get_observability
from repro.transaction.locks import LockManager, LockMode


class ConcurrencyControl:
    """Strategy interface between transactions and isolation machinery.

    Owners are opaque hashable values (transaction ids), matching the
    lock manager's vocabulary so the 2PL strategy is a thin wrapper.
    """

    #: lane tag used by per-lane metrics (``txn_lane_total{lane=...}``)
    lane = "unknown"

    def acquire(
        self,
        owner: object,
        resource: str,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Grant ``mode`` on ``resource`` to ``owner``, blocking or
        raising per the strategy's conflict rules."""
        raise NotImplementedError

    def would_block(self, owner: object, resource: str, mode: LockMode) -> bool:
        """True if :meth:`acquire` would have to wait right now."""
        raise NotImplementedError

    def try_acquire(self, owner: object, resource: str, mode: LockMode) -> bool:
        """Non-blocking acquire; returns False instead of waiting."""
        raise NotImplementedError

    def release_all(self, owner: object) -> None:
        """End-of-transaction release (strict 2PL releases only here)."""
        raise NotImplementedError

    def transfer(self, from_owner: object, to_owner: object) -> list[str]:
        """Re-own ``from_owner``'s resources to ``to_owner`` (Section
        6's lock inheritance).  Returns the transferred names."""
        raise NotImplementedError

    def held_by(self, owner: object) -> set[str]:
        raise NotImplementedError

    def holders(self, resource: str) -> dict:
        raise NotImplementedError

    def wait_stats(self) -> dict[str, float]:
        """Contention accounting for benchmarks and reports (all zeros
        when the strategy cannot block)."""
        raise NotImplementedError


class TwoPhaseLockingCC(ConcurrencyControl):
    """Strict two-phase locking — the seed strategy, extracted.

    Wraps a :class:`LockManager` and installs itself as the manager's
    accounting sink, so wait/deadlock/timeout metrics belong to the
    strategy rather than to the lock table itself.
    """

    lane = "2pl"

    def __init__(
        self,
        locks: LockManager | None = None,
        obs: Observability | None = None,
    ):
        self.locks = locks if locks is not None else LockManager()
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_wait = metrics.histogram(
            "lock_wait_seconds", "time spent waiting for a lock grant"
        )
        self._m_deadlocks = metrics.counter(
            "lock_deadlocks_total", "lock requests aborted by deadlock detection"
        )
        self._m_timeouts = metrics.counter(
            "lock_timeouts_total", "lock requests that timed out"
        )
        self.locks.sink = self

    # -- accounting sink (called by the lock manager) --------------------------

    def on_wait(self, seconds: float) -> None:
        self._m_wait.observe(seconds)

    def on_deadlock(self) -> None:
        self._m_deadlocks.inc()

    def on_timeout(self) -> None:
        self._m_timeouts.inc()

    # -- strategy interface ----------------------------------------------------

    def acquire(self, owner, resource, mode, timeout=None):
        self.locks.acquire(owner, resource, mode, timeout=timeout)

    def would_block(self, owner, resource, mode):
        return self.locks.would_block(owner, resource, mode)

    def try_acquire(self, owner, resource, mode):
        return self.locks.try_acquire(owner, resource, mode)

    def release_all(self, owner):
        self.locks.release_all(owner)

    def transfer(self, from_owner, to_owner):
        return self.locks.transfer(from_owner, to_owner)

    def held_by(self, owner):
        return self.locks.held_by(owner)

    def holders(self, resource):
        return self.locks.holders(resource)

    def wait_stats(self):
        return self.locks.stats.snapshot()


class DeterministicCC(ConcurrencyControl):
    """No-lock strategy for plan-ordered deterministic execution.

    The planner serializes conflicting work *before* it reaches an
    executor, so acquisition always succeeds instantly, nothing ever
    waits or deadlocks, and release is a no-op.  Wait accounting is
    structurally zero — there is nothing to wait for.
    """

    lane = "deterministic"

    def acquire(self, owner, resource, mode, timeout=None):
        return None

    def would_block(self, owner, resource, mode):
        return False

    def try_acquire(self, owner, resource, mode):
        return True

    def release_all(self, owner):
        return None

    def transfer(self, from_owner, to_owner):
        return []

    def held_by(self, owner):
        return set()

    def holders(self, resource):
        return {}

    def wait_stats(self):
        return {
            "acquisitions": 0,
            "waits": 0,
            "wait_time": 0.0,
            "deadlocks": 0,
            "timeouts": 0,
        }
