"""Two-phase commit across nodes.

Section 6 notes that a multi-transaction request "may be required in a
distributed system, if the nodes that process the request ... do not
use the same transaction protocol (e.g., two-phase commit)" — i.e. the
queued-request architecture is the *alternative* to distributed commit.
To make that comparison runnable (and because a QM "may need to support
multiple transaction protocols"), the substrate includes a classic
presumed-abort two-phase commit:

* **Phase 1** — the coordinator asks every branch's transaction manager
  to *prepare*: the branch force-logs a ``prep`` record and keeps its
  locks.  Any failure vetoes.
* **Decision** — the coordinator force-logs the global decision in its
  own log (an ``auto`` record under the pseudo-RM ``"_2pc"``).
  *Presumed abort*: if no decision record exists, the answer is abort.
* **Phase 2** — every branch applies the decision (``out`` record) and
  releases its locks.

A participant that crashes between phases recovers the branch as *in
doubt* (see :mod:`repro.transaction.recovery`) and resolves it by
asking the coordinator: :meth:`TwoPhaseCoordinator.decision`.
"""

from __future__ import annotations

import threading

from repro.errors import (
    DiskCrashedError,
    SimulatedCrash,
    StorageError,
    TwoPhaseCommitError,
    TwoPhaseInDoubtError,
    WalPanicError,
)
from repro.obs import Observability, get_observability
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.transaction.ids import TxnStatus
from repro.transaction.log import KIND_AUTO, LogManager
from repro.transaction.manager import Transaction, TransactionManager

_DECISION_RM = "_2pc"


class TwoPhaseCoordinator:
    """Coordinates global transactions over branches at several nodes."""

    def __init__(
        self,
        log: LogManager,
        name: str = "coord",
        injector: FaultInjector | None = None,
        tracker=None,
        obs: Observability | None = None,
    ):
        self.log = log
        self.name = name
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: optional decision tracker (a ``_DecisionRM``): mirrors every
        #: decision record into checkpointable volatile state, so the
        #: decision survives segment GC of the record that carried it
        self.tracker = tracker
        self._seq = 0
        self._mutex = threading.Lock()
        obs = obs if obs is not None else get_observability()
        self._flight = obs.flight
        # Labeled by log area, not coordinator name: restart recovery
        # mints a fresh epoch-suffixed coordinator per shard, and a
        # per-epoch label would grow without bound under chaos.
        area = log.area
        self._m_prepare = obs.metrics.histogram(
            "twophase_prepare_seconds",
            "per-branch prepare round-trip (force-logged prep record)",
            ("area",),
        ).labels(area=area)
        self._m_decide = obs.metrics.histogram(
            "twophase_decide_seconds",
            "coordinator decision force (the 2PC commit point)",
            ("area",),
        ).labels(area=area)

    def new_global_id(self) -> str:
        with self._mutex:
            self._seq += 1
            return f"{self.name}:{self._seq}"

    # -- protocol -------------------------------------------------------------

    def commit(self, branches: list[tuple[TransactionManager, Transaction]]) -> str:
        """Run the full protocol.  Returns ``"commit"`` or ``"abort"``.

        Raises :class:`TwoPhaseCommitError` if called with no branches.
        Branch failures during phase 1 turn into a clean global abort.
        """
        if not branches:
            raise TwoPhaseCommitError("no branches to commit")
        gid = self.new_global_id()

        prepared: list[tuple[TransactionManager, Transaction]] = []
        veto = False
        for tm, txn in branches:
            try:
                self.injector.reach("2pc.before_prepare")
                with self._m_prepare.time():
                    tm.prepare(txn, gid)
                prepared.append((tm, txn))
            except SimulatedCrash:
                raise
            except Exception:
                veto = True
                break
        self.injector.reach("2pc.after_prepare")

        if veto:
            try:
                self._log_decision(gid, "abort")
            except StorageError:
                # Presumed abort: the abort decision record is advisory
                # (no record *means* abort), so a failing coordinator log
                # must not leave the branches locked and in doubt.
                pass
            for tm, txn in branches:
                if txn.status is TxnStatus.PREPARED:
                    tm.abort_prepared(txn)
                elif txn.status is TxnStatus.ACTIVE:
                    tm.abort(txn, "2pc veto")
            return "abort"

        try:
            self._log_decision(gid, "commit")
        except (WalPanicError, DiskCrashedError):
            # Node-fatal: the process is going down and restart recovery
            # will resolve the prepared branches (presumed abort — the
            # decision never became durable).
            raise
        except StorageError:
            # Transient coordinator-log failure: the commit decision is
            # not durable, so by presumed abort the global decision *is*
            # abort.  Release the prepared branches rather than leaving
            # them locked and in doubt on a live node.
            for tm, txn in prepared:
                if txn.status is TxnStatus.PREPARED:
                    tm.abort_prepared(txn)
            return "abort"
        self.injector.reach("2pc.after_decision")
        for tm, txn in prepared:
            self._commit_branch(tm, txn)
            self.injector.reach("2pc.after_branch_commit")
        return "commit"

    #: phase-2 retry budget per branch before declaring it in doubt
    _PHASE2_ATTEMPTS = 3

    def _commit_branch(self, tm: TransactionManager, txn: Transaction) -> None:
        """Apply the durable commit decision to one prepared branch.

        Phase 2 must complete — the decision record already forced — so
        a transient I/O error on the branch's outcome record is retried
        (``commit_prepared`` leaves the branch PREPARED when its log
        write fails, so the retry is safe).  If the branch still cannot
        apply the decision, it is in doubt on a live node, holding its
        locks: that is node-fatal (:class:`TwoPhaseInDoubtError`), and
        restart recovery resolves it from the decision record."""
        last: StorageError | None = None
        for _ in range(self._PHASE2_ATTEMPTS):
            try:
                tm.commit_prepared(txn)
                return
            except (SimulatedCrash, WalPanicError, DiskCrashedError):
                raise
            except StorageError as exc:
                last = exc
        # Node-fatal with locks held: dump the black box before raising.
        self._flight.record("2pc.in_doubt", coord=self.name,
                            txn=str(txn.id), error=type(last).__name__)
        self._flight.auto_dump("2pc-in-doubt")
        raise TwoPhaseInDoubtError(
            f"branch {txn.id} could not apply the committed decision: {last}"
        ) from last

    def _log_decision(self, gid: str, decision: str) -> None:
        # The tracker is updated under the WAL lock at append time
        # (on_lsn): a fuzzy checkpoint concurrent with the decision
        # either snapshots the tracker entry or replays the record —
        # never neither.  If the append fails, nothing was noted.
        on_lsn = None
        if self.tracker is not None:
            def on_lsn(_lsn: int) -> None:
                self.tracker.note(gid, decision)
        with self._m_decide.time():
            self.log.log_auto(
                _DECISION_RM, {"gid": gid, "decision": decision}, on_lsn=on_lsn
            )
        self._flight.record("2pc.decision", coord=self.name,
                            gid=gid, decision=decision)

    # -- recovery-time resolution ------------------------------------------------

    def decision(self, gid: str) -> str:
        """Presumed-abort lookup: ``"commit"`` only if a durable commit
        decision exists for ``gid``."""
        if self.tracker is not None:
            found = self.tracker.get(gid)
            if found is not None:
                return found
        for record in self.log.records():
            if (
                record.kind == KIND_AUTO
                and record.rm == _DECISION_RM
                and record.data.get("gid") == gid
            ):
                return record.data["decision"]
        return "abort"
