"""Asyncio clerk gateway with admission control and backpressure.

See :mod:`repro.gateway.gateway` for the design; ``docs/deployment.md``
for the deployed topology.
"""

from repro.gateway.aio import AsyncShardConnection, AsyncShardPool
from repro.gateway.gateway import Gateway, GatewaySession

__all__ = [
    "AsyncShardConnection",
    "AsyncShardPool",
    "Gateway",
    "GatewaySession",
]
