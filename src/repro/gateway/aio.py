"""Asyncio side of the wire protocol.

One :class:`AsyncShardConnection` multiplexes many concurrent calls
over a single TCP connection to a shard, exactly like the threaded
:class:`~repro.comm.transport.TcpTransport` — same frames, same
correlation ids, same error envelopes — but driven by an event loop:
each in-flight call parks on an :class:`asyncio.Future` keyed by its
call id, and one reader task resolves them as response frames arrive.

The gateway holds a small pool of these per shard
(:class:`AsyncShardPool`): the wire is multiplexed, so the pool exists
to overlap TCP send buffers under load, not to serialize calls.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any

from repro.comm.wire import (
    DEFAULT_MAX_FRAME,
    KIND_CALL,
    KIND_RESP,
    FrameReader,
    encode_frame,
    unwrap,
)
from repro.errors import PartitionedError, RpcTimeout

#: per-call reply budget, mirroring the threaded transport's default
DEFAULT_CALL_TIMEOUT = 10.0


class AsyncShardConnection:
    """One multiplexed asyncio connection to one shard service."""

    def __init__(
        self,
        host: str,
        port: int,
        max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float = DEFAULT_CALL_TIMEOUT,
        connect_timeout: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._connect_lock: asyncio.Lock | None = None
        self.reconnects = 0

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        # The lock is created lazily so the connection object can be
        # built outside any event loop (the Gateway constructor runs in
        # sync code).  Without it, a burst of first calls would each see
        # no writer and open a connection apiece; the losers' transports
        # leak until GC closes them, and their read loops' teardown
        # would then kill the one connection everyone else is using.
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if self._writer is not None:
                return
            if self._closed:
                raise PartitionedError(
                    f"connection to {self.host}:{self.port} closed"
                )
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise PartitionedError(
                    f"cannot connect to shard at {self.host}:{self.port}: {exc}"
                ) from exc
            self._reader, self._writer = reader, writer
            self.reconnects += 1
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader, writer)
            )

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        frames = FrameReader(max_frame=self.max_frame)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for kind, call_id, payload in frames.feed(chunk):
                    if kind != KIND_RESP:
                        continue
                    future = self._pending.pop(call_id, None)
                    if future is not None and not future.done():
                        future.set_result(payload)
        except (OSError, asyncio.CancelledError, Exception):
            pass
        finally:
            self._teardown(writer)

    def _teardown(self, writer: asyncio.StreamWriter | None = None) -> None:
        """Connection died: fail every parked call — their requests may
        or may not have executed (the callers' retry/dedup discipline
        owns that ambiguity, as everywhere else in the system).

        ``writer`` identifies which transport is reporting death; if it
        is no longer the live one (a reconnect already superseded it),
        only that stale transport is closed — the live connection and
        its parked calls are untouched."""
        if writer is not None and writer is not self._writer:
            writer.close()
            return
        if self._writer is not None:
            self._writer.close()
        self._reader = self._writer = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    PartitionedError(
                        f"shard connection {self.host}:{self.port} lost"
                    )
                )

    async def call(self, payload: Any, timeout: float | None = None) -> Any:
        """One remote call; returns the unwrapped result (remote errors
        re-raised by class, exactly like the threaded client)."""
        await self._ensure_connected()
        call_id = next(self._ids)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[call_id] = future
        writer = self._writer
        assert writer is not None
        try:
            writer.write(encode_frame(KIND_CALL, call_id, payload))
            await writer.drain()
        except (OSError, ConnectionError) as exc:
            self._pending.pop(call_id, None)
            self._teardown(writer)
            raise PartitionedError(f"send to shard failed: {exc}") from exc
        budget = timeout if timeout is not None else self.timeout
        try:
            envelope = await asyncio.wait_for(future, timeout=budget)
        except asyncio.TimeoutError as exc:
            self._pending.pop(call_id, None)
            raise RpcTimeout(
                f"no response from {self.host}:{self.port} in {budget}s"
            ) from exc
        return unwrap(envelope)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._teardown()


class AsyncShardPool:
    """Round-robin pool of multiplexed connections to one shard."""

    def __init__(self, host: str, port: int, size: int = 2, **kwargs: Any):
        self.connections = [
            AsyncShardConnection(host, port, **kwargs) for _ in range(size)
        ]
        self._rr = itertools.count()

    async def call(self, payload: Any, timeout: float | None = None) -> Any:
        conn = self.connections[next(self._rr) % len(self.connections)]
        return await conn.call(payload, timeout=timeout)

    async def close(self) -> None:
        for conn in self.connections:
            await conn.close()
