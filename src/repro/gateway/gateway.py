"""The asyncio clerk gateway: many front-end sessions, few sockets.

Section 2 calls the queue "the gateway between the non-transaction
world of front-ends and the transactional world of back-ends".  This
module makes that literal: a :class:`Gateway` is an async front end
that terminates many concurrent client sessions in one event loop and
speaks the wire protocol to the shard processes over a small pool of
multiplexed connections.

Two admission-control gates protect the back end (the reproduction's
take on the paper's overload story — a queue absorbs bursts, but an
*unbounded* queue just converts overload into unbounded latency):

* an **in-flight cap**: at most ``max_inflight`` accepted-but-unreplied
  requests per gateway, and
* a **queue-depth watermark**: submissions are refused while the
  request queue's depth estimate is at or above ``depth_limit``.

Both refusals surface as :class:`~repro.errors.Busy` *before* the
request is accepted — the client retries later, and no durable state
exists anywhere, so the exactly-once accounting is untouched (a
``Busy`` request was never accepted).  The depth estimate is O(1) per
request: a local counter (+1 per accepted submit, −1 per received
reply) re-anchored to the true depth by a periodic refresh task.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.comm.wire import DEFAULT_MAX_FRAME
from repro.core.request import Request, make_rid
from repro.errors import Busy, CommError, ReproError
from repro.obs import Observability, get_observability
from repro.queueing.placement import ConsistentHashPlacement, PlacementPolicy

#: see repro.comm.remote — blocking dequeues get wire-level slack
_BLOCK_SLACK = 5.0
_DEFAULT_RECEIVE_TIMEOUT = 30.0


class Gateway:
    """Async clerk front end over the shard processes."""

    def __init__(
        self,
        endpoints: list[tuple[str, int]],
        request_queue: str = "req.q",
        *,
        name: str = "gateway",
        repository: str = "reqnode",
        max_inflight: int = 64,
        depth_limit: int = 512,
        backpressure: bool = True,
        pool_size: int = 2,
        depth_refresh: float = 0.25,
        placement: PlacementPolicy | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        obs: Observability | None = None,
    ):
        from repro.gateway.aio import AsyncShardPool

        self.name = name
        self.repository = repository
        self.request_queue = request_queue
        self.max_inflight = max_inflight
        self.depth_limit = depth_limit
        self.backpressure = backpressure
        self.depth_refresh = depth_refresh
        self.placement = (
            placement if placement is not None else ConsistentHashPlacement()
        )
        self.pools = [
            AsyncShardPool(host, port, size=pool_size, max_frame=max_frame)
            for host, port in endpoints
        ]
        self.inflight = 0
        self.depth_estimate = 0
        self.admitted = 0
        self.refused = 0
        self._locations: dict[str, int] = {}
        self._refresher: asyncio.Task | None = None
        obs = obs if obs is not None else get_observability()
        metrics = obs.metrics
        self._m_requests = metrics.counter(
            "gateway_requests_total",
            "gateway admission outcomes", ("gateway", "outcome"),
        )
        self._m_admitted = self._m_requests.labels(
            gateway=name, outcome="admitted")
        self._m_busy_inflight = self._m_requests.labels(
            gateway=name, outcome="busy_inflight")
        self._m_busy_depth = self._m_requests.labels(
            gateway=name, outcome="busy_depth")
        self._m_inflight = metrics.gauge(
            "gateway_inflight",
            "accepted-but-unreplied requests held by the gateway",
            ("gateway",),
        ).labels(gateway=name)
        self._m_depth = metrics.gauge(
            "gateway_depth_estimate",
            "gateway's O(1) request-queue depth estimate", ("gateway",),
        ).labels(gateway=name)
        self._m_rpc = metrics.histogram(
            "gateway_rpc_seconds",
            "gateway-side wire call latency", ("gateway", "shard"),
        )

    # -- shard routing ---------------------------------------------------

    def _shard_of(self, qname: str) -> int:
        cached = self._locations.get(qname)
        if cached is not None:
            return cached
        return self.placement.shard_for(qname, len(self.pools))

    async def _call(self, qname: str, payload: dict[str, Any],
                    timeout: float | None = None) -> Any:
        shard = self._shard_of(qname)
        loop = asyncio.get_event_loop()
        started = loop.time()
        try:
            return await self.pools[shard].call(payload, timeout=timeout)
        finally:
            self._m_rpc.labels(
                gateway=self.name, shard=str(shard)
            ).observe(loop.time() - started)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Learn the queue layout and start the depth refresher."""
        for shard, pool in enumerate(self.pools):
            hello = await pool.call({"op": "hello"})
            for qname in hello["queues"]:
                self._locations.setdefault(qname, shard)
        self.depth_estimate = await self._true_depth()
        self._m_depth.set(self.depth_estimate)
        self._refresher = asyncio.ensure_future(self._refresh_loop())

    async def _true_depth(self) -> int:
        return await self._call(
            self.request_queue,
            {"op": "depth", "queue": self.request_queue},
        )

    async def _refresh_loop(self) -> None:
        """Periodically re-anchor the depth estimate to the truth (the
        local counter drifts when servers or other gateways consume the
        queue behind this gateway's back)."""
        while True:
            await asyncio.sleep(self.depth_refresh)
            try:
                self.depth_estimate = await self._true_depth()
                self._m_depth.set(self.depth_estimate)
            except (CommError, ReproError):
                continue  # shard restarting: keep the local estimate

    async def close(self) -> None:
        if self._refresher is not None:
            self._refresher.cancel()
            try:
                await self._refresher
            except (asyncio.CancelledError, Exception):
                pass
            self._refresher = None
        for pool in self.pools:
            await pool.close()

    # -- admission -------------------------------------------------------

    def _admit(self) -> None:
        if self.inflight >= self.max_inflight:
            self._m_busy_inflight.inc()
            self.refused += 1
            raise Busy(
                f"gateway {self.name!r} at max_inflight={self.max_inflight}"
            )
        if self.backpressure and self.depth_estimate >= self.depth_limit:
            self._m_busy_depth.inc()
            self.refused += 1
            raise Busy(
                f"request queue depth {self.depth_estimate} at/over "
                f"limit {self.depth_limit}"
            )
        self.inflight += 1
        self.admitted += 1
        self._m_admitted.inc()
        self._m_inflight.set(self.inflight)

    def _release(self, consumed_request: bool) -> None:
        self.inflight = max(0, self.inflight - 1)
        self._m_inflight.set(self.inflight)
        if consumed_request:
            self.depth_estimate = max(0, self.depth_estimate - 1)
            self._m_depth.set(self.depth_estimate)

    # -- sessions --------------------------------------------------------

    async def session(self, client_id: str) -> "GatewaySession":
        """Connect one client: ensure + register its private reply
        queue and register it with the request queue (the async
        Connect of Figure 5)."""
        reply_queue = f"reply.{client_id}"
        await self._call(reply_queue, {
            "op": "create_queue", "queue": reply_queue, "config": {},
        })
        self._locations.setdefault(
            reply_queue, self._shard_of(reply_queue))
        request_reg = await self._call(self.request_queue, {
            "op": "register", "queue": self.request_queue,
            "registrant": client_id, "stable": True,
        })
        await self._call(reply_queue, {
            "op": "register", "queue": reply_queue,
            "registrant": client_id, "stable": True,
        })
        return GatewaySession(
            self, client_id, reply_queue,
            last_rid=request_reg["tag"],
        )


class GatewaySession:
    """One client's async clerk: Send / Receive over the gateway."""

    def __init__(self, gateway: Gateway, client_id: str, reply_queue: str,
                 last_rid: str | None = None):
        self.gateway = gateway
        self.client_id = client_id
        self.reply_queue = reply_queue
        self._sequence = 0
        self.last_rid = last_rid

    def _next_rid(self) -> str:
        self._sequence += 1
        return make_rid(self.client_id, self._sequence)

    def _handle(self, queue: str) -> dict[str, str]:
        return {
            "repository": self.gateway.repository,
            "queue": queue,
            "registrant": self.client_id,
        }

    async def submit(self, body: Any, priority: int = 0) -> str:
        """Admission-checked async Send; returns the rid.  Raises
        :class:`~repro.errors.Busy` (nothing accepted, retry later)
        when either admission gate refuses."""
        gateway = self.gateway
        gateway._admit()
        rid = self._next_rid()
        request = Request(
            rid=rid, body=body, client_id=self.client_id,
            reply_to=self.reply_queue,
        )
        try:
            await gateway._call(gateway.request_queue, {
                "op": "enqueue",
                "handle": self._handle(gateway.request_queue),
                "body": request.to_body(),
                "tag": rid,
                "txn": None,
                "priority": priority,
                "headers": {"rid": rid, "reply_to": self.reply_queue},
            })
        except BaseException:
            gateway._release(consumed_request=False)
            raise
        gateway.depth_estimate += 1
        gateway._m_depth.set(gateway.depth_estimate)
        self.last_rid = rid
        return rid

    async def receive(
        self, timeout: float | None = _DEFAULT_RECEIVE_TIMEOUT
    ) -> dict[str, Any]:
        """Await the next reply for this client (async Receive).  The
        received reply releases one in-flight slot and debits the depth
        estimate (a reply implies the back end consumed a request)."""
        gateway = self.gateway
        wire_timeout = (
            (timeout if timeout is not None else 3600.0) + _BLOCK_SLACK
        )
        record = await gateway._call(self.reply_queue, {
            "op": "dequeue",
            "handle": self._handle(self.reply_queue),
            "tag": [self.last_rid, None],
            "error_queue": None,
            "txn": None,
            "block": True,
            "timeout": timeout,
        }, timeout=wire_timeout)
        gateway._release(consumed_request=True)
        return record["body"]

    async def close(self) -> None:
        """Disconnect: deregister from both queues."""
        gateway = self.gateway
        await gateway._call(gateway.request_queue, {
            "op": "deregister",
            "handle": self._handle(gateway.request_queue),
        })
        await gateway._call(self.reply_queue, {
            "op": "deregister",
            "handle": self._handle(self.reply_queue),
        })
