"""Inventory workload: batch input and burst buffering (Section 1).

"Queues facilitate *batch input* of requests.  Requests can be captured
reliably in a queue, and processed later in a batch.  ...  Moreover,
queues provide a buffer that mitigates the effects of bursts of
requests."

:class:`InventoryApp` provides a stock-update handler plus workload
generators: a steady trickle, a burst, and a batch file; benchmark C3
measures queue depth over time and capture-vs-completion latency.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.request import Request
from repro.core.system import TPSystem
from repro.storage.kvstore import KVStore
from repro.transaction.manager import Transaction


class InventoryApp:
    """SKU quantities on the request node."""

    def __init__(self, system: TPSystem, table_name: str = "inventory"):
        self.system = system
        self.store: KVStore = system.table(table_name)

    def stock(self, quantities: dict[str, int]) -> None:
        with self.system.request_repo.tm.transaction() as txn:
            for sku, quantity in quantities.items():
                self.store.put(txn, f"sku/{sku}", quantity)

    def quantity(self, sku: str) -> int:
        with self.system.request_repo.tm.transaction() as txn:
            return self.store.get(txn, f"sku/{sku}", default=0)

    def total_units(self) -> int:
        with self.system.request_repo.tm.transaction() as txn:
            return sum(v for _k, v in self.store.scan(txn, prefix="sku/"))

    # ------------------------------------------------------------------
    # Handler
    # ------------------------------------------------------------------

    def update_handler(self, txn: Transaction, request: Request) -> Any:
        """Apply one stock delta; negative stock floors at zero with the
        shortfall reported (receipts and shipments)."""
        body = request.body
        key = f"sku/{body['sku']}"
        current = self.store.get(txn, key, default=0)
        new_quantity = current + body["delta"]
        shortfall = 0
        if new_quantity < 0:
            shortfall = -new_quantity
            new_quantity = 0
        self.store.put(txn, key, new_quantity)
        return {"sku": body["sku"], "qty": new_quantity, "shortfall": shortfall}

    # ------------------------------------------------------------------
    # Workload generators
    # ------------------------------------------------------------------

    @staticmethod
    def steady_work(n: int, skus: list[str], seed: int = 1) -> list[dict[str, Any]]:
        rng = random.Random(seed)
        return [
            {"sku": rng.choice(skus), "delta": rng.randint(-3, 5)} for _ in range(n)
        ]

    @staticmethod
    def burst_work(
        bursts: int, burst_size: int, skus: list[str], seed: int = 2
    ) -> list[list[dict[str, Any]]]:
        """A list of bursts, each a list of updates arriving 'at once'."""
        rng = random.Random(seed)
        return [
            [
                {"sku": rng.choice(skus), "delta": rng.randint(-3, 5)}
                for _ in range(burst_size)
            ]
            for _ in range(bursts)
        ]

    @staticmethod
    def batch_file(n: int, skus: list[str], seed: int = 3) -> list[dict[str, Any]]:
        """An end-of-day batch: receipts only (a warehouse intake file)."""
        rng = random.Random(seed)
        return [{"sku": rng.choice(skus), "delta": rng.randint(1, 10)} for _ in range(n)]
