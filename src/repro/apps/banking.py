"""Banking workload: accounts, transfers, and the Section 6 / Section 7
funds-transfer multi-transaction request with compensations.

Money invariant: the sum of all account balances plus the clearinghouse
float is constant across any mix of transfers, aborts, crashes, and
compensations — tests assert it after every failure scenario.
"""

from __future__ import annotations

from typing import Any

from repro.core.applocks import AppLockTable
from repro.core.multitxn import MultiTransactionPipeline, Stage, StageContext
from repro.core.request import REPLY_FAILED, Reply, Request
from repro.core.saga import Saga
from repro.core.system import TPSystem
from repro.storage.kvstore import KVStore
from repro.transaction.manager import Transaction


class InsufficientFunds(Exception):
    """Business failure: the transfer cannot proceed."""


class BankApp:
    """Accounts on the request node's KV store."""

    def __init__(self, system: TPSystem, table_name: str = "accounts"):
        self.system = system
        self.accounts: KVStore = system.table(table_name)
        self.audit: KVStore = system.table(f"{table_name}.audit")

    # ------------------------------------------------------------------
    # Setup / invariants
    # ------------------------------------------------------------------

    def open_accounts(self, balances: dict[str, int]) -> None:
        with self.system.request_repo.tm.transaction() as txn:
            for account, balance in balances.items():
                self.accounts.put(txn, f"acct/{account}", balance)

    def balance(self, account: str) -> int:
        with self.system.request_repo.tm.transaction() as txn:
            value = self.accounts.get(txn, f"acct/{account}")
        if value is None:
            raise KeyError(f"no account {account!r}")
        return value

    def total_money(self) -> int:
        """Sum over all accounts + clearinghouse float (conserved)."""
        with self.system.request_repo.tm.transaction() as txn:
            total = sum(v for k, v in self.accounts.scan(txn, prefix="acct/"))
            total += self.accounts.get(txn, "clearinghouse/float", default=0)
        return total

    def audit_entries(self, rid: str | None = None) -> list[dict[str, Any]]:
        with self.system.request_repo.tm.transaction() as txn:
            entries = [v for _k, v in self.audit.scan(txn, prefix="log/")]
        if rid is not None:
            entries = [e for e in entries if e.get("rid") == rid]
        return entries

    # ------------------------------------------------------------------
    # Primitive moves
    # ------------------------------------------------------------------

    def _adjust(self, txn: Transaction, account: str, delta: int) -> int:
        key = f"acct/{account}"
        balance = self.accounts.get(txn, key)
        if balance is None:
            raise KeyError(f"no account {account!r}")
        new_balance = balance + delta
        if new_balance < 0:
            raise InsufficientFunds(
                f"account {account!r} has {balance}, cannot apply {delta}"
            )
        self.accounts.put(txn, key, new_balance)
        return new_balance

    def _log(self, txn: Transaction, rid: str, record: dict[str, Any]) -> None:
        self.audit.put(txn, f"log/{rid}", {"rid": rid, **record})

    # ------------------------------------------------------------------
    # Single-transaction transfer (the Figure 5 baseline)
    # ------------------------------------------------------------------

    def transfer_handler(self, txn: Transaction, request: Request) -> Any:
        """One transaction: debit, credit, audit — or a failed reply."""
        body = request.body
        try:
            self._adjust(txn, body["from"], -body["amount"])
            self._adjust(txn, body["to"], +body["amount"])
        except InsufficientFunds as exc:
            # Exactly-once unsuccessful attempt: commit a failure reply.
            return Reply(rid=request.rid, body={"error": str(exc)}, status=REPLY_FAILED)
        self._log(txn, request.rid, {"kind": "transfer", **body})
        return {"transferred": body["amount"], "from": body["from"], "to": body["to"]}

    # ------------------------------------------------------------------
    # Multi-transaction transfer (Section 6's three transactions)
    # ------------------------------------------------------------------

    def transfer_pipeline(
        self,
        name: str = "xfer",
        *,
        inherit_locks: bool = False,
        lock_table: AppLockTable | None = None,
    ) -> MultiTransactionPipeline:
        """debit source → credit target → log with clearinghouse."""
        app = self

        def debit(txn: Transaction, request: Request, ctx: StageContext) -> Any:
            body = request.body
            if lock_table is not None:
                ctx.app_lock(txn, f"acct/{body['from']}")
                ctx.app_lock(txn, f"acct/{body['to']}")
            app._adjust(txn, body["from"], -body["amount"])
            ctx.scratch["debited"] = body["amount"]
            return body

        def credit(txn: Transaction, request: Request, ctx: StageContext) -> Any:
            body = request.body
            app._adjust(txn, body["to"], +body["amount"])
            ctx.scratch["credited"] = body["amount"]
            return body

        def clearinghouse(txn: Transaction, request: Request, ctx: StageContext) -> Any:
            body = request.body
            app._log(
                txn,
                request.rid,
                {"kind": "transfer", "scratch": dict(ctx.scratch), **body},
            )
            return {
                "transferred": body["amount"],
                "from": body["from"],
                "to": body["to"],
                "via": "multi-transaction",
            }

        return MultiTransactionPipeline(
            self.system,
            name,
            [Stage("debit", debit), Stage("credit", credit), Stage("log", clearinghouse)],
            inherit_locks=inherit_locks,
            lock_table=lock_table,
        )

    def transfer_saga(self, pipeline: MultiTransactionPipeline) -> Saga:
        """Compensations for the three stages (Section 7): credit the
        source back, debit the target back, mark the audit entry void."""
        app = self

        def lookup_body(txn: Transaction, rid: str) -> dict[str, Any] | None:
            return app.audit.get(txn, f"req/{rid}")

        # Stage handlers must remember the request body so compensations
        # can find it; wrap stage 0 to record it.
        original_debit = pipeline.stages[0].handler

        def remembering_debit(txn: Transaction, request: Request, ctx: StageContext):
            app.audit.put(txn, f"req/{request.rid}", dict(request.body))
            return original_debit(txn, request, ctx)

        pipeline.stages[0] = Stage("debit", remembering_debit)

        def comp_debit(txn: Transaction, rid: str) -> None:
            body = lookup_body(txn, rid)
            if body is not None:
                app._adjust(txn, body["from"], +body["amount"])

        def comp_credit(txn: Transaction, rid: str) -> None:
            body = lookup_body(txn, rid)
            if body is not None:
                app._adjust(txn, body["to"], -body["amount"])

        def comp_log(txn: Transaction, rid: str) -> None:
            entry = app.audit.get(txn, f"log/{rid}")
            if entry is not None:
                app.audit.put(txn, f"log/{rid}", {**entry, "void": True})

        return Saga(pipeline, [comp_debit, comp_credit, comp_log])

    # ------------------------------------------------------------------
    # Workload generators
    # ------------------------------------------------------------------

    @staticmethod
    def transfer_work(
        pairs: list[tuple[str, str, int]]
    ) -> list[dict[str, Any]]:
        return [{"from": s, "to": t, "amount": a} for (s, t, a) in pairs]
