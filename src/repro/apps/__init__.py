"""Realistic application workloads for the examples, tests, and
benchmarks.

* :mod:`repro.apps.banking` — accounts and funds transfers, including
  the paper's own Section 6 example: "a funds transfer request may be
  processed as three separate transactions: debit source bank account,
  credit target bank account, and log the transfer with a
  clearinghouse", plus the compensations that cancel it (Section 7).
* :mod:`repro.apps.orders` — an interactive order-entry conversation
  (Section 8) in both pseudo-conversational and single-transaction
  styles.
* :mod:`repro.apps.inventory` — batch/burst stock updates (Section 1's
  batch input and burst buffering).
"""

from repro.apps.banking import BankApp
from repro.apps.orders import OrderApp
from repro.apps.inventory import InventoryApp

__all__ = ["BankApp", "OrderApp", "InventoryApp"]
