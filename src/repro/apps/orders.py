"""Interactive order entry (Section 8 workload).

The conversation, in three phases:

0. customer identifies themselves → output: greeting + catalog;
1. customer picks item and quantity → output: a price quote
   (reserving stock);
2. customer confirms → final output: order placed, stock decremented.

Provided in both of Section 8's styles: a pseudo-conversational step
function (each phase a transaction) and a single-transaction body that
solicits the same inputs through a
:class:`~repro.core.interactive.LoggedConversation`.
"""

from __future__ import annotations

from typing import Any

from repro.core.interactive import LoggedConversation
from repro.core.request import Request
from repro.core.system import TPSystem
from repro.storage.kvstore import KVStore
from repro.transaction.manager import Transaction


class OrderApp:
    """Catalog + stock + orders on the request node."""

    def __init__(self, system: TPSystem, table_name: str = "orders"):
        self.system = system
        self.store: KVStore = system.table(table_name)

    def stock_items(self, stock: dict[str, tuple[int, int]]) -> None:
        """``stock[item] = (price, quantity)``."""
        with self.system.request_repo.tm.transaction() as txn:
            for item, (price, quantity) in stock.items():
                self.store.put(txn, f"item/{item}", {"price": price, "qty": quantity})

    def stock_of(self, item: str) -> int:
        with self.system.request_repo.tm.transaction() as txn:
            record = self.store.get(txn, f"item/{item}")
        return 0 if record is None else record["qty"]

    def orders_for(self, customer: str) -> list[dict[str, Any]]:
        with self.system.request_repo.tm.transaction() as txn:
            return [
                v
                for k, v in self.store.scan(txn, prefix="order/")
                if v.get("customer") == customer
            ]

    # ------------------------------------------------------------------
    # Shared per-phase logic
    # ------------------------------------------------------------------

    def _catalog(self, txn: Transaction) -> dict[str, int]:
        return {
            key.split("/", 1)[1]: value["price"]
            for key, value in self.store.scan(txn, prefix="item/")
        }

    def _quote(self, txn: Transaction, item: str, quantity: int) -> dict[str, Any]:
        record = self.store.get(txn, f"item/{item}")
        if record is None:
            return {"error": f"unknown item {item!r}"}
        if record["qty"] < quantity:
            return {"error": f"only {record['qty']} of {item!r} in stock"}
        return {"item": item, "qty": quantity, "total": record["price"] * quantity}

    def _place(
        self, txn: Transaction, rid: str, customer: str, item: str, quantity: int
    ) -> dict[str, Any]:
        record = self.store.get(txn, f"item/{item}")
        if record is None or record["qty"] < quantity:
            return {"error": "out of stock at confirmation time"}
        self.store.put(
            txn, f"item/{item}", {**record, "qty": record["qty"] - quantity}
        )
        order = {
            "rid": rid,
            "customer": customer,
            "item": item,
            "qty": quantity,
            "total": record["price"] * quantity,
        }
        self.store.put(txn, f"order/{rid}", order)
        return order

    # ------------------------------------------------------------------
    # Pseudo-conversational step function (Section 8.2)
    # ------------------------------------------------------------------

    def conversational_step(
        self, txn: Transaction, phase: int, input_value: Any, scratch: dict[str, Any]
    ) -> tuple[Any, bool]:
        """For :func:`repro.core.interactive.conversational_handler`.
        The scratch pad carries customer and selection between the
        transactions (each phase is its own transaction)."""
        if phase == 0:
            scratch["customer"] = input_value
            return {"greeting": f"hello {input_value}", "catalog": self._catalog(txn)}, False
        if phase == 1:
            scratch["item"] = input_value["item"]
            scratch["qty"] = input_value["qty"]
            return self._quote(txn, input_value["item"], input_value["qty"]), False
        if phase == 2:
            if not input_value.get("confirm"):
                return {"cancelled": True}, True
            rid = scratch.get("rid", f"order-{scratch['customer']}")
            return (
                self._place(txn, rid, scratch["customer"], scratch["item"], scratch["qty"]),
                True,
            )
        raise ValueError(f"conversation has no phase {phase}")

    # ------------------------------------------------------------------
    # Single-transaction interactive body (Section 8.3)
    # ------------------------------------------------------------------

    def interactive_body(
        self, txn: Transaction, request: Request, conversation: LoggedConversation
    ) -> dict[str, Any]:
        """The whole order as ONE transaction soliciting inputs via the
        logged conversation."""
        customer = request.body["customer"]
        selection = conversation.ask(
            {"greeting": f"hello {customer}", "catalog": self._catalog(txn)}
        )
        quote = self._quote(txn, selection["item"], selection["qty"])
        confirmation = conversation.ask(quote)
        if "error" in quote or not confirmation.get("confirm"):
            return {"cancelled": True}
        return self._place(
            txn, request.rid, customer, selection["item"], selection["qty"]
        )
