"""Virtual time.

All timestamps inside the simulated system come from a
:class:`VirtualClock` so that runs are deterministic and tests never
sleep.  Components that need wall-clock time in production accept a
``clock`` argument and default to a process-wide instance.
"""

from __future__ import annotations

import itertools


class VirtualClock:
    """A discrete, monotonically non-decreasing virtual clock.

    Time is a float number of virtual seconds.  ``tick()`` returns a
    strictly increasing sequence even when ``advance`` is never called,
    which gives unique, ordered timestamps for log records.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._seq = itertools.count(1)

    def now(self) -> float:
        """Return the current virtual time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (must be >= 0) and return it."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def tick(self) -> float:
        """Return a unique timestamp strictly greater than any previous
        ``tick()`` result, advancing time by an infinitesimal step."""
        self._now += 1e-9
        return self._now

    def sequence(self) -> int:
        """Return the next value of a process-wide event sequence number."""
        return next(self._seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now!r})"
