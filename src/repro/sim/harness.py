"""Crash-at-every-step harness.

The idiom used throughout the test and benchmark suites::

    def scenario(injector):
        node = build_node(injector)     # fresh volatile state
        run_protocol(node)              # instrumented with injector.reach()
        return node

    def recover(node):
        return rebuild_and_resync(node) # restart recovery + client resync

    results = crash_every_step(scenario, recover, check)

``crash_every_step`` first runs ``scenario`` with a recording injector
to enumerate the ordered list of crash points the run reaches.  It then
re-runs the scenario once per (point, hit) pair with a crash armed
there, catches the :class:`~repro.errors.SimulatedCrash`, invokes
``recover``, and finally invokes ``check`` to assert the paper's
guarantees.  Because the simulation is deterministic, this enumerates
*every* crash location the protocol can experience, not a random
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SimulatedCrash
from repro.sim.crash import CrashPlan, FaultInjector


@dataclass
class CrashStepResult:
    """Outcome of one crash-injected run."""

    plan: CrashPlan
    crashed: bool
    scenario_result: Any
    recovery_result: Any
    check_result: Any


def enumerate_crash_points(
    scenario: Callable[[FaultInjector], Any],
) -> list[tuple[str, int]]:
    """Run ``scenario`` once with no armed crashes and return the ordered
    (point, hit) schedule it reached."""
    injector = FaultInjector()
    scenario(injector)
    return injector.schedule()


def crash_every_step(
    scenario: Callable[[FaultInjector], Any],
    recover: Callable[[Any], Any],
    check: Callable[[Any, Any, CrashPlan], Any] | None = None,
    *,
    points: list[tuple[str, int]] | None = None,
    point_filter: Callable[[str], bool] | None = None,
) -> list[CrashStepResult]:
    """Run ``scenario`` once per reachable crash point with a crash there.

    Parameters
    ----------
    scenario:
        Builds fresh system state and runs the protocol.  Receives the
        :class:`FaultInjector` to wire into every component.  Its return
        value (or, when it crashes, the partially-built state it exposed
        via ``scenario.state`` — see below) is passed to ``recover``.
    recover:
        Invoked after each crash (and also after crash-free completion,
        so the no-crash path is checked by the same code) with the
        scenario result.  Should perform restart recovery and client
        resynchronization, returning whatever ``check`` needs.
    check:
        Optional assertion hook ``check(scenario_result, recovery_result,
        plan)``; its return value is stored on the step result.
    points:
        Pre-enumerated (point, hit) schedule; computed by a recording
        run when omitted.
    point_filter:
        Restrict injection to points whose name satisfies the predicate.

    Scenario state hand-off
    -----------------------
    When the scenario crashes mid-way it cannot *return* its state, so
    the harness reads the attribute ``scenario.state`` (if the callable
    has one) as the post-crash state.  Scenarios typically assign
    ``scenario.state = node`` as soon as the node is built.
    """
    if points is None:
        points = enumerate_crash_points(scenario)
    if point_filter is not None:
        points = [(p, h) for (p, h) in points if point_filter(p)]

    results: list[CrashStepResult] = []
    for point, hit in points:
        plan = CrashPlan(point, hit)
        injector = FaultInjector(plans=[plan], record=False)
        crashed = False
        state: Any = None
        try:
            state = scenario(injector)
        except SimulatedCrash:
            crashed = True
            state = getattr(scenario, "state", None)
        recovery = recover(state)
        outcome = check(state, recovery, plan) if check is not None else None
        results.append(CrashStepResult(plan, crashed, state, recovery, outcome))

    # Also exercise the crash-free path through the same recover/check.
    injector = FaultInjector(record=False)
    state = scenario(injector)
    recovery = recover(state)
    outcome = check(state, recovery, CrashPlan("<none>", 1)) if check else None
    results.append(CrashStepResult(CrashPlan("<none>", 1), False, state, recovery, outcome))
    return results
