"""Deterministic simulation substrate: virtual time, crash injection,
execution tracing, and the crash-at-every-step harness.

The paper's guarantees (Section 3) are *fault-tolerance* guarantees, so
the reproduction's test and benchmark suites must exercise failures
systematically.  This package provides:

* :class:`~repro.sim.clock.VirtualClock` — discrete virtual time.
* :class:`~repro.sim.crash.FaultInjector` — named crash points; code under
  test calls ``injector.reach("point")`` and the harness arms a crash at
  any (point, hit-count) pair.
* :class:`~repro.sim.trace.TraceRecorder` — a global, append-only record
  of protocol events, consumed by :mod:`repro.core.guarantees`.
* :func:`~repro.sim.harness.crash_every_step` — run a scenario once to
  enumerate its crash points, then re-run it once per point with a crash
  injected there, applying a caller-supplied recovery procedure.
"""

from repro.sim.clock import VirtualClock
from repro.sim.crash import FaultInjector, CrashPlan
from repro.sim.trace import TraceRecorder, TraceEvent
from repro.sim.harness import crash_every_step, CrashStepResult

__all__ = [
    "VirtualClock",
    "FaultInjector",
    "CrashPlan",
    "TraceRecorder",
    "TraceEvent",
    "crash_every_step",
    "CrashStepResult",
]
