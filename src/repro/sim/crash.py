"""Named crash points and deterministic fault injection.

Protocol code is instrumented with calls such as::

    self.injector.reach("server.after_dequeue")

In production (no injector, or an idle one) this is a no-op.  Under
test, a :class:`CrashPlan` arms a crash at a given (point, hit) pair;
when the instrumented code reaches that point for the N-th time, a
:class:`~repro.errors.SimulatedCrash` is raised.  ``SimulatedCrash``
derives from ``BaseException`` so protocol code cannot catch it — just
as a process cannot catch a power failure.

The injector also *records* every point it reaches, in order.  The
crash-at-every-step harness (:mod:`repro.sim.harness`) uses a recording
run to enumerate the schedule of points, then replays the scenario once
per point with a crash armed there.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import SimulatedCrash


@dataclass(frozen=True)
class CrashPlan:
    """Crash the ``hit``-th time execution reaches ``point`` (1-based)."""

    point: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.hit < 1:
            raise ValueError(f"hit must be >= 1, got {self.hit}")


@dataclass
class FaultInjector:
    """Deterministic crash-point registry.

    An injector may be shared by all the components of one simulated
    node, so a single plan can crash the node no matter which component
    reaches the armed point.
    """

    plans: list[CrashPlan] = field(default_factory=list)
    #: every point reached, in order (the "schedule" of a run)
    history: list[str] = field(default_factory=list)
    #: callbacks invoked just before raising, e.g. to mark a disk's
    #: unflushed tail as lost
    on_crash: list[Callable[[str], None]] = field(default_factory=list)
    record: bool = True

    def __post_init__(self) -> None:
        self._hits: Counter[str] = Counter()

    # -- configuration ---------------------------------------------------

    def arm(self, point: str, hit: int = 1) -> None:
        """Arm a crash at the ``hit``-th occurrence of ``point``."""
        self.plans.append(CrashPlan(point, hit))

    def arm_all(self, plans: Iterable[CrashPlan]) -> None:
        self.plans.extend(plans)

    def disarm(self) -> None:
        """Remove all plans (reached-point history is preserved)."""
        self.plans.clear()

    def reset(self) -> None:
        """Clear plans, history, and hit counters."""
        self.plans.clear()
        self.history.clear()
        self._hits.clear()

    # -- instrumentation entry point --------------------------------------

    def reach(self, point: str) -> None:
        """Declare that execution reached ``point``.

        Raises :class:`SimulatedCrash` if a plan is armed for this
        (point, hit) pair; otherwise a cheap no-op.
        """
        self._hits[point] += 1
        if self.record:
            self.history.append(point)
        hit = self._hits[point]
        for plan in self.plans:
            if plan.point == point and plan.hit == hit:
                for hook in self.on_crash:
                    hook(point)
                raise SimulatedCrash(f"{point}#{hit}")

    # -- introspection -----------------------------------------------------

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached."""
        return self._hits[point]

    def schedule(self) -> list[tuple[str, int]]:
        """The reached points as (point, hit-index) pairs, suitable for
        building one :class:`CrashPlan` per step."""
        seen: Counter[str] = Counter()
        out: list[tuple[str, int]] = []
        for point in self.history:
            seen[point] += 1
            out.append((point, seen[point]))
        return out


#: A module-level injector that never crashes; components default to it
#: so production code paths need no ``if injector is not None`` checks.
NULL_INJECTOR = FaultInjector(record=False)
