"""Execution trace recording.

The guarantee checkers of :mod:`repro.core.guarantees` verify the
paper's three properties (Request-Reply Matching, Exactly-Once
Request-Processing, At-Least-Once Reply-Processing) over a recorded
*trace* of protocol events.  This module defines the event record and
the recorder.

Events are recorded from an omniscient observer's viewpoint: e.g.
``request.executed`` is recorded by the server when the transaction
that processed the request *commits* — aborted attempts record
``request.attempt_aborted`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One observed protocol event.

    ``kind`` is a dotted name such as ``"request.sent"``;
    ``rid`` is the request id the event concerns (may be ``None`` for
    system-level events such as crashes); ``detail`` carries
    event-specific data.
    """

    seq: int
    kind: str
    rid: object = None
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        rid = f" rid={self.rid}" if self.rid is not None else ""
        return f"[{self.seq}] {self.kind}{rid} {self.detail or ''}".rstrip()


class TraceRecorder:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._seq = 0

    def record(self, kind: str, rid: object = None, **detail: Any) -> TraceEvent:
        """Append an event and return it."""
        self._seq += 1
        event = TraceEvent(self._seq, kind, rid, dict(detail))
        self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------

    def events(self, kind: str | None = None, rid: object = None) -> list[TraceEvent]:
        """Events filtered by kind and/or rid (None matches anything)."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind) and (rid is None or e.rid == rid)
        ]

    def count(self, kind: str, rid: object = None) -> int:
        return len(self.events(kind, rid))

    def rids(self, kind: str) -> list[object]:
        """The rids of all events of ``kind``, in order, duplicates kept."""
        return [e.rid for e in self._events if e.kind == kind]

    def last(self, kind: str, rid: object = None) -> TraceEvent | None:
        matches = self.events(kind, rid)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
