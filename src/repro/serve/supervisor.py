"""Spawn, monitor and restart shard processes.

The supervisor turns ``node.kill`` from a simulated fault into a real
``SIGKILL``: the shard process dies mid-write like a power failure,
and :meth:`ShardSupervisor.restart` boots ``repro-shardd`` again over
the same data directory — real restart recovery over a real WAL.

After every restart the supervisor runs the distributed half of
recovery that a lone shard cannot: prepared two-phase branches come
back *in doubt*, and their global ids name the coordinator shard whose
log holds (or, by presumed abort, does not hold) the decision.  The
supervisor asks that shard and resolves each branch, releasing its
locks — the process-level analogue of
``ShardedRepository._resolve_in_doubt``.

Ports are assigned by the OS on first boot (``--port 0``) and pinned
on restart (``SO_REUSEADDR``), so client transports simply reconnect
to the same address and their seeded backoff rides out the recovery
window.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.comm.transport import TcpTransport
from repro.errors import CommError, ReproError
from repro.serve.client import ShardClient

#: seconds to wait for a shard's READY handshake line
READY_TIMEOUT = 30.0

_READY_RE = re.compile(
    r"^READY name=(?P<name>\S+) port=(?P<port>\d+) "
    r"epoch=(?P<epoch>\d+) pid=(?P<pid>\d+)$"
)
#: coordinator shard index embedded in a global id's prefix
_GID_SHARD_RE = re.compile(r"\.s(?P<shard>\d+)\.e\d+$")


@dataclass
class ShardProcess:
    """One supervised shard subprocess."""

    index: int
    data_dir: str
    port: int = 0
    epoch: int = 0
    pid: int = 0
    proc: subprocess.Popen | None = field(default=None, repr=False)
    restarts: int = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ShardSupervisor:
    """Lifecycle manager for the shard processes of one system."""

    def __init__(
        self,
        root_dir: str,
        shards: int,
        name: str = "reqnode",
        cc: str = "2pl",
        host: str = "127.0.0.1",
        auto_restart: bool = False,
        on_restart: Callable[[int], None] | None = None,
        python: str = sys.executable,
    ):
        self.root_dir = root_dir
        self.name = name
        self.cc = cc
        self.host = host
        self.python = python
        self.auto_restart = auto_restart
        self.on_restart = on_restart
        self.shard_count = shards
        self.shards: list[ShardProcess] = []
        self._closed = False
        self._mutex = threading.Lock()
        self._monitor: threading.Thread | None = None
        for index in range(shards):
            data_dir = os.path.join(root_dir, f"s{index}")
            os.makedirs(data_dir, exist_ok=True)
            self.shards.append(ShardProcess(index=index, data_dir=data_dir))
        for shard in self.shards:
            self._spawn(shard)
        if auto_restart:
            self._monitor = threading.Thread(
                target=self._monitor_loop, daemon=True,
                name="shard-supervisor",
            )
            self._monitor.start()

    # -- process control -------------------------------------------------

    def _spawn(self, shard: ShardProcess) -> None:
        argv = [
            self.python, "-m", "repro.serve.shardd",
            "--dir", shard.data_dir,
            "--port", str(shard.port),  # 0 on first boot, pinned after
            "--host", self.host,
            "--name", self.name,
            "--shard", str(shard.index),
            "--shards", str(self.shard_count),
            "--cc", self.cc,
        ]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        shard.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True,
        )
        self._wait_ready(shard)

    def _wait_ready(self, shard: ShardProcess) -> None:
        assert shard.proc is not None and shard.proc.stdout is not None
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            if time.monotonic() > deadline:
                shard.proc.kill()
                raise ReproError(
                    f"shard {shard.index} did not report READY in "
                    f"{READY_TIMEOUT}s"
                )
            line = shard.proc.stdout.readline()
            if not line:
                raise ReproError(
                    f"shard {shard.index} exited before READY "
                    f"(code {shard.proc.poll()})"
                )
            match = _READY_RE.match(line.strip())
            if match:
                shard.port = int(match.group("port"))
                shard.epoch = int(match.group("epoch"))
                shard.pid = int(match.group("pid"))
                return

    def kill(self, index: int) -> None:
        """SIGKILL shard ``index`` — a real crash, mid-write and all."""
        shard = self.shards[index]
        with self._mutex:
            if shard.proc is not None and shard.proc.poll() is None:
                os.kill(shard.proc.pid, signal.SIGKILL)
                shard.proc.wait()

    def restart(self, index: int) -> None:
        """Boot shard ``index`` again over its data directory (restart
        recovery), then resolve any in-doubt two-phase branches against
        the other shards' decision records."""
        shard = self.shards[index]
        with self._mutex:
            if shard.proc is not None and shard.proc.poll() is None:
                return  # already running
            shard.restarts += 1
            self._spawn(shard)
        self.resolve_in_doubt(index)
        if self.on_restart is not None:
            self.on_restart(index)

    def _monitor_loop(self) -> None:
        while not self._closed:
            for shard in self.shards:
                if self._closed:
                    return
                if shard.proc is not None and shard.proc.poll() is not None:
                    try:
                        self.restart(shard.index)
                    except ReproError:
                        pass  # retried on the next sweep
            time.sleep(0.2)

    def close(self) -> None:
        """Terminate every shard process (end of test/benchmark)."""
        self._closed = True
        for shard in self.shards:
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.kill()
                shard.proc.wait()

    # -- distributed in-doubt resolution --------------------------------

    def _client(self, index: int, max_retries: int = 10) -> ShardClient:
        shard = self.shards[index]
        return ShardClient(
            TcpTransport(self.host, shard.port, max_retries=max_retries)
        )

    def coordinator_shard(self, gid: str) -> int:
        """The shard whose log holds (or presumed-abort lacks) the
        decision for ``gid`` — encoded in the id's coordinator prefix
        (``<name>.s<k>.e<epoch>:...``)."""
        prefix = gid.split(":", 1)[0]
        match = _GID_SHARD_RE.search(prefix)
        return int(match.group("shard")) if match else 0

    def resolve_in_doubt(self, index: int) -> int:
        """Settle the in-doubt branches of a freshly restarted shard.

        Presumed abort: the branch commits only if the coordinator
        shard has a durable commit decision.  Returns the number of
        branches resolved."""
        client = self._client(index)
        resolved = 0
        try:
            branches = client.call({"op": "in_doubt"})
            for branch in branches:
                if branch["resolved"] is not None:
                    continue
                gid = branch["gid"]
                coordinator = self.coordinator_shard(gid)
                decision = "abort"
                try:
                    if coordinator != index and self.shards[coordinator].alive:
                        decision = self._client(coordinator).call(
                            {"op": "txn_decision", "gid": gid}
                        )
                    elif coordinator == index:
                        decision = client.call(
                            {"op": "txn_decision", "gid": gid}
                        )
                except CommError:
                    # Coordinator unreachable: leave the branch in
                    # doubt (locks held) rather than guessing — the
                    # next restart pass retries.
                    continue
                client.call(
                    {"op": "txn_resolve", "gid": gid, "decision": decision}
                )
                resolved += 1
        finally:
            client.close()
        return resolved
