"""The shard service: one queue repository behind the wire protocol.

A :class:`ShardService` extends the clerk-facing
:class:`~repro.comm.remote.QueueManagerService` with everything a
*transactional* remote caller needs:

* a branch table — ``txn_begin`` opens a shard-local transaction and
  returns its id; later calls name it (``{"txn": id}``) so a routed
  transaction's queue operations land in the right branch;
* the two-phase-commit branch operations (``txn_prepare`` /
  ``txn_commit_prepared`` / ``txn_abort_prepared``) driven by the
  client-side coordinator of :mod:`repro.serve.client`;
* the coordinator's durable side: ``txn_decide`` force-logs the global
  decision on *this* shard's log (under the same pseudo-RM ``"_2pc"``
  as the in-process coordinator, mirrored into the shard's decision
  tracker), ``txn_decision`` answers presumed-abort lookups, and
  ``in_doubt``/``txn_resolve`` let the supervisor settle prepared
  branches left by a crash;
* data definition and introspection (``create_queue``, ``queue_names``,
  ``depths``, ``checkpoint``, ``hello``).

Retry discipline: the transport is at-least-once for idempotent queue
operations but transaction *outcome* ops are called with ``retries=0``
(at-most-once).  A retried ``txn_commit_prepared``/``txn_abort_prepared``
after a restart falls back to the global id: the branch was recovered
in doubt and is resolved by gid, or the outcome already applied before
the crash — either way the call is idempotent because the decision was
durable first.
"""

from __future__ import annotations

from typing import Any

from repro.comm.remote import QueueManagerService
from repro.errors import ReproError, TransactionAborted
from repro.queueing.manager import QueueManager
from repro.queueing.queue import DequeueMode
from repro.queueing.repository import QueueRepository
from repro.transaction.ids import TxnStatus
from repro.transaction.log import KIND_AUTO
from repro.transaction.manager import Transaction
from repro.transaction.twophase import _DECISION_RM

#: remembered outcomes of finished branches, for duplicate outcome calls
_OUTCOME_CACHE = 1024


class ShardService(QueueManagerService):
    """Wire-protocol dispatcher for one repository shard."""

    def __init__(self, repo: QueueRepository, epoch: int = 0,
                 qm: QueueManager | None = None):
        super().__init__(qm if qm is not None else QueueManager(repo))
        self.repo = repo
        self.epoch = epoch
        #: open branches by shard-local transaction id
        self.txns: dict[int, Transaction] = {}
        #: recently finished branch ids -> "commit" | "abort"
        self._outcomes: dict[int, str] = {}

    # -- branch table ---------------------------------------------------

    def _resolve_txn(self, payload: dict[str, Any]) -> Transaction | None:
        branch_id = payload.get("txn")
        if branch_id is None:
            return None
        txn = self.txns.get(branch_id)
        if txn is None:
            raise TransactionAborted(
                branch_id, "unknown branch (shard restarted; presumed abort)"
            )
        return txn

    def _finish(self, branch_id: int, outcome: str) -> None:
        self.txns.pop(branch_id, None)
        self._outcomes[branch_id] = outcome
        while len(self._outcomes) > _OUTCOME_CACHE:
            self._outcomes.pop(next(iter(self._outcomes)))

    # -- dispatch -------------------------------------------------------

    def _dispatch(self, payload: dict[str, Any]) -> Any:
        op = payload["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is not None:
            return handler(payload)
        return super()._dispatch(payload)

    # -- admin ----------------------------------------------------------

    def _op_hello(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {
            "name": self.repo.name,
            "epoch": self.epoch,
            "queues": self.repo.queue_names(),
        }

    def _op_create_queue(self, payload: dict[str, Any]) -> None:
        from repro.errors import QueueExistsError

        config = dict(payload.get("config") or {})
        if "mode" in config:
            config["mode"] = DequeueMode(config["mode"])
        if "index_headers" in config:
            config["index_headers"] = tuple(config["index_headers"])
        try:
            self.repo.create_queue(payload["queue"], **config)
        except QueueExistsError:
            pass  # duplicate delivery / restart replay: already there

    def _op_queue_names(self, payload: dict[str, Any]) -> list[str]:
        return self.repo.queue_names()

    def _op_depths(self, payload: dict[str, Any]) -> dict[str, int]:
        return {
            name: queue.depth() for name, queue in self.repo.queues.items()
        }

    def _op_checkpoint(self, payload: dict[str, Any]) -> None:
        self.repo.checkpoint()

    def _op_txn_stats(self, payload: dict[str, Any]) -> dict[str, int]:
        return {"commits": self.repo.tm.commits, "aborts": self.repo.tm.aborts}

    # -- transaction lifecycle ------------------------------------------

    def _op_txn_begin(self, payload: dict[str, Any]) -> int:
        txn = self.repo.tm.begin()
        self.txns[txn.id] = txn
        return txn.id

    def _op_txn_commit(self, payload: dict[str, Any]) -> None:
        branch_id = payload["txn"]
        txn = self.txns.get(branch_id)
        if txn is None:
            if self._outcomes.get(branch_id) == "commit":
                return  # duplicate of a commit that succeeded
            raise TransactionAborted(
                branch_id, "unknown branch (shard restarted; presumed abort)"
            )
        try:
            self.repo.tm.commit(txn)
        except BaseException:
            if txn.status is TxnStatus.ABORTED:
                self._finish(branch_id, "abort")
            raise
        self._finish(branch_id, "commit")

    def _op_txn_abort(self, payload: dict[str, Any]) -> None:
        branch_id = payload["txn"]
        txn = self.txns.get(branch_id)
        if txn is None:
            return  # already finished or lost to a restart: aborted either way
        if txn.status is TxnStatus.ACTIVE:
            self.repo.tm.abort(txn, payload.get("reason", "remote abort"))
        self._finish(branch_id, "abort")

    def _op_txn_abort_by_id(self, payload: dict[str, Any]) -> bool:
        return self.repo.tm.abort_by_id(
            payload["txn"], payload.get("reason", "external abort")
        )

    # -- two-phase commit branch side -----------------------------------

    def _op_txn_prepare(self, payload: dict[str, Any]) -> None:
        txn = self.txns.get(payload["txn"])
        if txn is None:
            raise TransactionAborted(
                payload["txn"],
                "unknown branch (shard restarted; presumed abort)",
            )
        self.repo.tm.prepare(txn, payload["gid"])

    def _op_txn_commit_prepared(self, payload: dict[str, Any]) -> None:
        self._apply_prepared(payload, "commit")

    def _op_txn_abort_prepared(self, payload: dict[str, Any]) -> None:
        self._apply_prepared(payload, "abort")

    def _apply_prepared(self, payload: dict[str, Any], decision: str) -> None:
        branch_id = payload["txn"]
        txn = self.txns.get(branch_id)
        if txn is not None:
            if decision == "commit":
                self.repo.tm.commit_prepared(txn)
            else:
                self.repo.tm.abort_prepared(txn)
            self._finish(branch_id, decision)
            return
        if self._outcomes.get(branch_id) == decision:
            return  # duplicate of an outcome that already applied
        # Restarted since the prepare: recovery re-materialized the
        # branch as in doubt; resolve it by global id.  Not finding it
        # means the outcome applied before the crash (the decision was
        # durable before this call could be made) — idempotent success.
        gid = payload.get("gid")
        if gid is not None:
            self._resolve_by_gid(gid, decision)

    def _resolve_by_gid(self, gid: str, decision: str) -> bool:
        for branch in self.repo.last_recovery.in_doubt:
            if branch.global_id == gid:
                if branch.resolved is None:
                    branch.resolve(decision)
                return True
        return False

    # -- two-phase commit coordinator side ------------------------------

    def _op_txn_decide(self, payload: dict[str, Any]) -> None:
        gid, decision = payload["gid"], payload["decision"]
        if decision not in ("commit", "abort"):
            raise ReproError(f"bad decision {decision!r}")
        # Skip the force if this exact decision is already durable (a
        # retried decide): decision records are write-once per gid.
        if self.repo.decisions.get(gid) == decision:
            return
        self.repo.log.log_auto(
            _DECISION_RM, {"gid": gid, "decision": decision},
            on_lsn=lambda _lsn: self.repo.decisions.note(gid, decision),
        )

    def _op_txn_decision(self, payload: dict[str, Any]) -> str:
        gid = payload["gid"]
        found = self.repo.decisions.get(gid)
        if found is not None:
            return found
        for record in self.repo.log.records():
            if (
                record.kind == KIND_AUTO
                and record.rm == _DECISION_RM
                and record.data.get("gid") == gid
            ):
                return record.data["decision"]
        return "abort"

    # -- restart resolution (driven by the supervisor) ------------------

    def _op_in_doubt(self, payload: dict[str, Any]) -> list[dict[str, Any]]:
        return [
            {"gid": branch.global_id, "resolved": branch.resolved}
            for branch in self.repo.last_recovery.in_doubt
        ]

    def _op_txn_resolve(self, payload: dict[str, Any]) -> bool:
        return self._resolve_by_gid(payload["gid"], payload["decision"])
