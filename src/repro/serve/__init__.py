"""Shards as operating-system processes.

The paper's architecture (Figure 4) puts clients, queue servers and
request servers on separate nodes; Gray's *Queues Are Databases*
argues the queue's payoff — load sharing, burst buffering — only
exists across genuinely independent servers.  This package deploys the
reproduction that way:

* :class:`~repro.serve.service.ShardService` — one
  :class:`~repro.queueing.repository.QueueRepository` shard (its WAL,
  locks, transaction manager, checkpointer) behind the wire protocol,
  serving the queue-manager surface *and* the two-phase-commit branch
  operations that :mod:`repro.transaction.routing` drives.
* ``repro.serve.shardd`` — the ``repro-shardd`` console entry point
  hosting one service over a :class:`~repro.comm.transport.TcpListener`.
* :class:`~repro.serve.supervisor.ShardSupervisor` — spawns, monitors
  and restarts shard subprocesses; ``kill()`` is a real ``SIGKILL``
  and the restart runs real restart recovery, then resolves in-doubt
  2PC branches against the surviving shards' decision records.
* :mod:`repro.serve.client` — the driver-side stubs: remote
  transaction managers and coordinators behind the *same*
  :class:`~repro.transaction.routing.ShardedTransactionManager` used
  in process, and a queue-manager facade the unchanged
  :class:`~repro.core.clerk.Clerk` / :class:`~repro.core.server.Server`
  run against.

``TPSystem(deployment="tcp")`` assembles all of it.
"""

from repro.serve.client import (
    RemoteRepository,
    RemoteShardedQueueManager,
    ShardClient,
)
from repro.serve.service import ShardService
from repro.serve.supervisor import ShardProcess, ShardSupervisor

__all__ = [
    "ShardService",
    "ShardSupervisor",
    "ShardProcess",
    "ShardClient",
    "RemoteRepository",
    "RemoteShardedQueueManager",
]
