"""Driver-side stubs for the TCP shard deployment.

The design rule of this module: **reuse the routing layer, replace the
medium**.  :class:`~repro.transaction.routing.ShardedTransactionManager`
and :class:`~repro.transaction.routing.RoutedTransaction` already know
how to pick a commit protocol from the branch set (0 branches → no-op,
1 → single shard force, ≥2 → presumed-abort two-phase commit with the
first-touched shard coordinating).  Here they run unchanged — their
``shard_tm(i)`` just returns a :class:`RemoteShardTM` whose branches
live in another OS process, and their per-shard coordinator is a
:class:`RemoteTwoPhaseCoordinator` that forces the decision record on
the coordinator *shard's* log over the wire.

Branch-status mirroring: a :class:`RemoteBranch` keeps a client-side
copy of the server transaction's status, updated by the outcome of
each wire call, because the routing layer steers on ``branch.status``.
The server remains authoritative — a mirror can only lag in ways the
protocol already tolerates (e.g. an externally-aborted branch is
discovered at commit time as :class:`TransactionAborted`).

Failure mapping (the same taxonomy in-proc callers see):

* a dead shard surfaces as :class:`PartitionedError`/:class:`RpcTimeout`
  from the transport, classified retryable by servers and clerks;
* a commit whose reply was lost is *unknown*: the caller retries the
  whole request transaction, and the queue discipline (tagged
  operations, dequeue redelivery) makes the end result exactly-once —
  the paper's argument, now over a real wire;
* a coordinator crash between decision and phase 2 leaves branches
  prepared on live shards; :meth:`RemoteTwoPhaseCoordinator.commit`
  polls the restarted coordinator for the durable decision (presumed
  abort if none survived) and finishes phase 2, raising
  :class:`TwoPhaseInDoubtError` only if the coordinator stays
  unreachable.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Mapping
from typing import Any, Iterator

from repro.comm.transport import TcpTransport, Transport
from repro.comm.wire import unwrap
from repro.errors import (
    CommError,
    NoSuchQueueError,
    QueueExistsError,
    ReproError,
    StorageError,
    TransactionAborted,
    TwoPhaseCommitError,
    TwoPhaseInDoubtError,
)
from repro.obs import Observability
from repro.queueing.element import Element
from repro.queueing.manager import QueueHandle
from repro.queueing.placement import ConsistentHashPlacement, PlacementPolicy
from repro.queueing.queue import DequeueMode
from repro.queueing.registration import Registration
from repro.transaction.ids import TxnStatus
from repro.transaction.routing import RoutedTransaction, ShardedTransactionManager

#: see repro.comm.remote — same blocking-dequeue timeout discipline
_BLOCK_SLACK = 5.0
_BLOCK_FOREVER = 3600.0


class ShardClient:
    """Thin typed wrapper: one transport to one shard service.

    With an :class:`~repro.obs.Observability`, every call lands in the
    ``rpc_client_seconds`` histogram and the transport's byte counters
    feed ``rpc_client_bytes_total`` — the wire-level cost ledger the
    ``network`` section of ``python -m repro.obs.report`` renders.
    """

    def __init__(self, transport: Transport, obs: Observability | None = None,
                 node: str = "reqnode", shard: int = 0):
        self.transport = transport
        self._m_latency = None
        if obs is not None and obs.enabled:
            metrics = obs.metrics
            self._m_latency = metrics.histogram(
                "rpc_client_seconds",
                "driver-side wire call round-trip", ("node", "shard"),
            ).labels(node=node, shard=str(shard))
            bytes_total = metrics.counter(
                "rpc_client_bytes_total",
                "driver-side wire bytes by direction",
                ("node", "shard", "direction"),
            )
            self._m_sent = bytes_total.labels(
                node=node, shard=str(shard), direction="sent")
            self._m_received = bytes_total.labels(
                node=node, shard=str(shard), direction="received")
            self._seen_sent = 0
            self._seen_received = 0
            self._metric_mutex = threading.Lock()

    def _observe(self, elapsed: float) -> None:
        self._m_latency.observe(elapsed)
        sent = getattr(self.transport, "bytes_sent", 0)
        received = getattr(self.transport, "bytes_received", 0)
        with self._metric_mutex:
            delta_sent, self._seen_sent = sent - self._seen_sent, sent
            delta_received = received - self._seen_received
            self._seen_received = received
        if delta_sent > 0:
            self._m_sent.inc(delta_sent)
        if delta_received > 0:
            self._m_received.inc(delta_received)

    def call(self, payload: dict[str, Any], timeout: float | None = None,
             retries: int | None = None) -> Any:
        if self._m_latency is None:
            return unwrap(
                self.transport.request(
                    payload, timeout=timeout, retries=retries)
            )
        started = time.perf_counter()
        try:
            return unwrap(
                self.transport.request(
                    payload, timeout=timeout, retries=retries)
            )
        finally:
            self._observe(time.perf_counter() - started)

    def close(self) -> None:
        self.transport.close()


# ---------------------------------------------------------------------------
# Remote transaction branches
# ---------------------------------------------------------------------------


class RemoteBranch:
    """Client-side mirror of one shard-local branch transaction."""

    def __init__(self, tm: "RemoteShardTM", branch_id: int):
        self.tm = tm
        self.id = branch_id
        self.status = TxnStatus.ACTIVE
        #: global id, set when the branch is prepared — lets outcome
        #: calls fall back to gid resolution across a shard restart
        self.gid: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteBranch(id={self.id}, status={self.status.value})"


class RemoteShardTM:
    """The :class:`~repro.transaction.manager.TransactionManager`
    surface of one remote shard, as the routing layer drives it.

    Outcome calls go out with ``retries=0`` (at-most-once): a retried
    commit could re-execute against a *different* incarnation of the
    branch id space after a restart.  An unknown outcome (lost reply)
    surfaces as :class:`CommError`; the caller retries the whole
    request transaction and the queues absorb the duplicate.
    """

    def __init__(self, client: ShardClient, shard_index: int):
        self.client = client
        self.shard_index = shard_index

    # -- lifecycle -------------------------------------------------------

    def begin(self) -> RemoteBranch:
        branch_id = self.client.call({"op": "txn_begin"}, retries=0)
        return RemoteBranch(self, branch_id)

    def commit(self, txn: RemoteBranch) -> None:
        try:
            self.client.call({"op": "txn_commit", "txn": txn.id}, retries=0)
        except TransactionAborted:
            txn.status = TxnStatus.ABORTED
            raise
        txn.status = TxnStatus.COMMITTED

    def abort(self, txn: RemoteBranch, reason: str = "application abort") -> None:
        if txn.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            return
        try:
            self.client.call(
                {"op": "txn_abort", "txn": txn.id, "reason": reason}
            )
        except CommError:
            # Shard unreachable: its restart recovery aborts the branch
            # anyway (presumed abort for unprepared work).
            pass
        txn.status = TxnStatus.ABORTED

    def abort_by_id(self, txn_id: int, reason: str = "external abort") -> bool:
        try:
            return bool(self.client.call(
                {"op": "txn_abort_by_id", "txn": txn_id, "reason": reason}
            ))
        except CommError:
            return False

    # -- two-phase branch operations ------------------------------------

    def prepare(self, txn: RemoteBranch, global_id: str) -> None:
        try:
            self.client.call(
                {"op": "txn_prepare", "txn": txn.id, "gid": global_id},
                retries=0,
            )
        except TransactionAborted:
            txn.status = TxnStatus.ABORTED
            raise
        txn.status = TxnStatus.PREPARED
        txn.gid = global_id

    def commit_prepared(self, txn: RemoteBranch) -> None:
        self.client.call(
            {"op": "txn_commit_prepared", "txn": txn.id, "gid": txn.gid},
            retries=0,
        )
        txn.status = TxnStatus.COMMITTED

    def abort_prepared(self, txn: RemoteBranch) -> None:
        self.client.call(
            {"op": "txn_abort_prepared", "txn": txn.id, "gid": txn.gid},
            retries=0,
        )
        txn.status = TxnStatus.ABORTED

    # -- counters (benchmark parity) ------------------------------------

    def _stats(self) -> dict[str, int]:
        try:
            return self.client.call({"op": "txn_stats"})
        except CommError:
            return {"commits": 0, "aborts": 0}

    @property
    def commits(self) -> int:
        return self._stats()["commits"]

    @property
    def aborts(self) -> int:
        return self._stats()["aborts"]


class RemoteTwoPhaseCoordinator:
    """Presumed-abort two-phase commit whose decision record lives on a
    remote shard's log (the shard this coordinator is bound to).

    Mirrors :class:`~repro.transaction.twophase.TwoPhaseCoordinator`
    step for step; the decision force becomes an idempotent
    ``txn_decide`` call (duplicate decides for the same gid are
    absorbed server-side), so it may ride the at-least-once retry
    discipline that a real network needs.
    """

    #: phase-2 attempts per branch; between attempts the shard may be
    #: restarting, so the budget spans the supervisor's recovery window
    _PHASE2_ATTEMPTS = 10
    #: how long to poll a crashed coordinator for the durable decision
    _DECISION_WAIT = 30.0

    def __init__(self, client: ShardClient, name: str):
        self.client = client
        self.name = name
        self._seq = 0
        self._mutex = threading.Lock()

    def new_global_id(self) -> str:
        with self._mutex:
            self._seq += 1
            return f"{self.name}:p{os.getpid()}:{self._seq}"

    # -- protocol --------------------------------------------------------

    def commit(
        self, branches: list[tuple[RemoteShardTM, RemoteBranch]]
    ) -> str:
        if not branches:
            raise TwoPhaseCommitError("no branches to commit")
        gid = self.new_global_id()

        prepared: list[tuple[RemoteShardTM, RemoteBranch]] = []
        veto = False
        for tm, txn in branches:
            try:
                tm.prepare(txn, gid)
                prepared.append((tm, txn))
            except ReproError:
                veto = True
                break

        if veto:
            try:
                self._decide(gid, "abort")  # advisory under presumed abort
            except ReproError:
                pass
            self._abort_branches(branches)
            return "abort"

        try:
            self._decide(gid, "commit")
        except CommError:
            # The coordinator shard went down with the decision's
            # durability unknown.  Ask its restarted incarnation: the
            # recovered decision tracker is authoritative (presumed
            # abort if the force never reached the disk).
            decision = self._await_decision(gid)
            if decision != "commit":
                self._abort_branches(prepared)
                return "abort"
        except StorageError:
            # Clean force failure: the decision is not durable, so by
            # presumed abort the global decision IS abort.
            self._abort_branches(prepared)
            return "abort"

        for tm, txn in prepared:
            self._commit_branch(tm, txn)
        return "commit"

    def _decide(self, gid: str, decision: str) -> None:
        self.client.call({"op": "txn_decide", "gid": gid, "decision": decision})

    def _await_decision(self, gid: str) -> str:
        deadline = time.monotonic() + self._DECISION_WAIT
        while True:
            try:
                return self.client.call({"op": "txn_decision", "gid": gid})
            except CommError as exc:
                if time.monotonic() > deadline:
                    raise TwoPhaseInDoubtError(
                        f"coordinator for {gid} unreachable; branches "
                        f"remain prepared until the supervisor resolves "
                        f"them"
                    ) from exc
                time.sleep(0.25)

    def _abort_branches(
        self, branches: list[tuple[RemoteShardTM, RemoteBranch]]
    ) -> None:
        for tm, txn in branches:
            try:
                if txn.status is TxnStatus.PREPARED:
                    tm.abort_prepared(txn)
                elif txn.status is TxnStatus.ACTIVE:
                    tm.abort(txn, "2pc veto")
            except ReproError:
                # Shard down: restart recovery + the supervisor's
                # in-doubt pass settle it (presumed abort).
                pass

    def _commit_branch(self, tm: RemoteShardTM, txn: RemoteBranch) -> None:
        """Phase 2 must complete — the decision is durable.  Retries
        span shard restarts (the server resolves by gid after one)."""
        last: ReproError | None = None
        for attempt in range(self._PHASE2_ATTEMPTS):
            try:
                tm.commit_prepared(txn)
                return
            except (CommError, StorageError) as exc:
                last = exc
                time.sleep(min(1.0, 0.05 * 2 ** attempt))
        raise TwoPhaseInDoubtError(
            f"branch {txn.id} could not apply the committed decision: {last}"
        ) from last


# ---------------------------------------------------------------------------
# Repository facade
# ---------------------------------------------------------------------------


class _RemoteQueue:
    """Introspection stub for one remote queue (depth and name; the
    operations go through the queue manager)."""

    def __init__(self, client: ShardClient, name: str):
        self._client = client
        self.name = name

    def depth(self) -> int:
        return self._client.call({"op": "depth", "queue": self.name})


class _RemoteQueues(Mapping):
    """Name → queue-stub mapping over every shard (union of names)."""

    def __init__(self, repo: "RemoteRepository"):
        self._repo = repo

    def __getitem__(self, name: str) -> _RemoteQueue:
        shard = self._repo._locate_queue(name)
        if shard is None:
            raise KeyError(name)
        return _RemoteQueue(self._repo.clients[shard], name)

    def __contains__(self, name: object) -> bool:
        return (
            isinstance(name, str)
            and self._repo._locate_queue(name) is not None
        )

    def __iter__(self) -> Iterator[str]:
        seen: set[str] = set()
        for names in self._repo._names_by_shard():
            for name in names:
                if name not in seen:
                    seen.add(name)
                    yield name

    def __len__(self) -> int:
        return sum(1 for _ in iter(self))


class RemoteRepository:
    """The repository surface (``tm``, ``queues``, ``create_queue``...)
    over shard processes — what a :class:`~repro.core.server.Server`
    or :class:`~repro.core.clerk.Clerk` sees as ``qm.repo`` in the TCP
    deployment.

    Placement is client-side and mirrors the in-process facade exactly
    (:class:`~repro.queueing.placement.ConsistentHashPlacement` hashes
    are process-stable): location-first routing, then co-location pins,
    then the policy.
    """

    def __init__(
        self,
        name: str,
        endpoints: list[tuple[str, int]],
        placement: PlacementPolicy | None = None,
        obs: Observability | None = None,
        seed: int = 0,
        max_retries: int = 10,
    ):
        self.name = name
        self.placement = (
            placement if placement is not None else ConsistentHashPlacement()
        )
        self.shard_count = len(endpoints)
        self.endpoints = list(endpoints)
        self.clients = [
            ShardClient(
                TcpTransport(host, port, seed=seed + i,
                             max_retries=max_retries),
                obs=obs, node=name, shard=i,
            )
            for i, (host, port) in enumerate(endpoints)
        ]
        #: queue name -> shard location cache (volatile; re-validated
        #: against the shards on miss)
        self._locations: dict[str, int] = {}
        self._pins: dict[str, int] = {}
        self.epochs = [
            client.call({"op": "hello"})["epoch"] for client in self.clients
        ]
        coordinator_names = [
            (f"{name}.s{i}.e{self.epochs[i]}" if self.shard_count > 1
             else f"{name}.e{self.epochs[i]}")
            for i in range(self.shard_count)
        ]
        self.coordinators = [
            RemoteTwoPhaseCoordinator(client, cname)
            for client, cname in zip(self.clients, coordinator_names)
        ]
        self.tm = ShardedTransactionManager(
            [RemoteShardTM(client, i) for i, client in enumerate(self.clients)],
            self.coordinators,
            obs=obs,
            node=name,
        )
        self.queues = _RemoteQueues(self)

    # -- location --------------------------------------------------------

    def _names_by_shard(self) -> list[list[str]]:
        out = []
        for client in self.clients:
            try:
                out.append(client.call({"op": "queue_names"}))
            except CommError:
                out.append([])  # shard down: treat as empty for iteration
        return out

    def _locate_queue(self, qname: str) -> int | None:
        cached = self._locations.get(qname)
        if cached is not None:
            return cached
        for index, names in enumerate(self._names_by_shard()):
            if qname in names:
                self._locations[qname] = index
                return index
        return None

    def shard_of(self, name: str) -> int:
        located = self._locate_queue(name)
        if located is not None:
            return located
        pinned = self._pins.get(name)
        if pinned is not None:
            return pinned
        return self.placement.shard_for(name, self.shard_count)

    # -- data definition -------------------------------------------------

    @staticmethod
    def _wire_config(config: dict[str, Any]) -> dict[str, Any]:
        wire: dict[str, Any] = {}
        for key, value in config.items():
            if isinstance(value, DequeueMode):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            wire[key] = value
        return wire

    def create_queue(self, qname: str, **config: Any) -> _RemoteQueue:
        if self._locate_queue(qname) is not None:
            raise QueueExistsError(
                f"queue {qname!r} already exists in {self.name!r}"
            )
        error_queue = config.get("error_queue")
        shard: int | None = None
        if error_queue is not None:
            # Dead-letter moves happen inside one shard transaction, so
            # a queue must share its error queue's shard.
            shard = self._locate_queue(error_queue)
        if shard is None:
            shard = self.shard_of(qname)
        self.clients[shard].call(
            {"op": "create_queue", "queue": qname,
             "config": self._wire_config(config)}
        )
        self._locations[qname] = shard
        if error_queue is not None:
            self._pins[error_queue] = shard
        return _RemoteQueue(self.clients[shard], qname)

    def create_table(self, tname: str) -> Any:
        raise ReproError(
            "application tables are not served over the TCP deployment; "
            "handlers must keep request state in queue payloads "
            "(Section 9's scratch pad) or run in-process"
        )

    # -- lookup ----------------------------------------------------------

    def get_queue(self, qname: str) -> _RemoteQueue:
        shard = self._locate_queue(qname)
        if shard is None:
            raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
        return _RemoteQueue(self.clients[shard], qname)

    def queue_names(self) -> list[str]:
        return sorted(self.queues)

    def depths_by_shard(self) -> dict[int, dict[str, int]]:
        return {
            index: client.call({"op": "depths"})
            for index, client in enumerate(self.clients)
        }

    # -- lifecycle -------------------------------------------------------

    def checkpoint(self) -> None:
        for client in self.clients:
            client.call({"op": "checkpoint"})

    def close(self) -> None:
        for client in self.clients:
            client.close()


# ---------------------------------------------------------------------------
# Queue-manager facade
# ---------------------------------------------------------------------------


class RemoteShardedQueueManager:
    """The :class:`~repro.queueing.manager.QueueManager` surface over
    shard processes: operations route by queue name, and a routed
    transaction's operations resolve to (and lazily open) its branch on
    the owning shard — the same contract the in-process sharded views
    implement, carried as a branch id on the wire.
    """

    def __init__(self, repo: RemoteRepository):
        self.repo = repo

    # -- routing helpers -------------------------------------------------

    def _target(self, qname: str) -> tuple[ShardClient, int]:
        shard = self.repo.shard_of(qname)
        return self.repo.clients[shard], shard

    @staticmethod
    def _branch_id(txn: Any, shard: int) -> int | None:
        if txn is None:
            return None
        if isinstance(txn, RoutedTransaction):
            return txn.branch_for(shard).id
        if isinstance(txn, RemoteBranch):
            return txn.id
        raise ReproError(
            f"cannot route a {type(txn).__name__} over the wire"
        )

    @staticmethod
    def _handle_record(handle: QueueHandle) -> dict[str, str]:
        return {
            "repository": handle.repository,
            "queue": handle.queue,
            "registrant": handle.registrant,
        }

    # -- QueueManager surface --------------------------------------------

    def register(
        self, qname: str, registrant: str, stable: bool = True, txn=None
    ) -> tuple[QueueHandle, Any, int | None]:
        client, _ = self._target(qname)
        result = client.call(
            {"op": "register", "queue": qname, "registrant": registrant,
             "stable": stable}
        )
        record = result["handle"]
        handle = QueueHandle(
            record["repository"], record["queue"], record["registrant"]
        )
        return handle, result["tag"], result["eid"]

    def deregister(self, handle: QueueHandle, txn=None) -> None:
        client, _ = self._target(handle.queue)
        client.call(
            {"op": "deregister", "handle": self._handle_record(handle)}
        )

    def enqueue(
        self,
        handle: QueueHandle,
        body: Any,
        tag: Any = None,
        *,
        txn=None,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        client, shard = self._target(handle.queue)
        return client.call(
            {"op": "enqueue", "handle": self._handle_record(handle),
             "body": body, "tag": tag, "txn": self._branch_id(txn, shard),
             "priority": priority, "headers": headers}
        )

    def dequeue(
        self,
        handle: QueueHandle,
        tag: Any = None,
        error_queue: str | None = None,
        *,
        txn=None,
        block: bool = False,
        timeout: float | None = None,
        selector=None,
    ) -> Element:
        if selector is not None:
            raise ReproError("selectors cannot cross the wire")
        client, shard = self._target(handle.queue)
        wire_timeout = None
        if block:
            wire_timeout = (
                timeout if timeout is not None else _BLOCK_FOREVER
            ) + _BLOCK_SLACK
        record = client.call(
            {"op": "dequeue", "handle": self._handle_record(handle),
             "tag": tag, "error_queue": error_queue,
             "txn": self._branch_id(txn, shard), "block": block,
             "timeout": timeout},
            timeout=wire_timeout,
        )
        return Element.from_record(record)

    def registration_info(self, handle: QueueHandle) -> Registration | None:
        client, _ = self._target(handle.queue)
        record = client.call(
            {"op": "registration_info", "handle": self._handle_record(handle)}
        )
        return None if record is None else Registration.from_record(record)

    def read(self, handle: QueueHandle, eid: int) -> Element:
        client, _ = self._target(handle.queue)
        record = client.call(
            {"op": "read", "handle": self._handle_record(handle), "eid": eid}
        )
        return Element.from_record(record)

    def kill_element(self, handle: QueueHandle, eid: int) -> bool:
        client, _ = self._target(handle.queue)
        return client.call(
            {"op": "kill_element", "handle": self._handle_record(handle),
             "eid": eid}
        )

    def depth(self, qname: str) -> int:
        client, _ = self._target(qname)
        return client.call({"op": "depth", "queue": qname})
