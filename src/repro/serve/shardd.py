"""``repro-shardd`` — host one repository shard over TCP.

Usage::

    repro-shardd --dir /var/lib/repro/s0 --port 7401
    repro-shardd --dir ./s1 --port 0 --name reqnode --shard 1 --shards 2

Booting over a non-empty directory *is* restart recovery: the WAL is
replayed, prepared two-phase branches come back in doubt (resolved by
the supervisor against the other shards' decision records), and a
durable coordinator-epoch record is forced so global transaction ids
minted against this incarnation can never collide with decision
records from before the crash.

The process prints one machine-readable handshake line once it is
serving::

    READY name=<shard-name> port=<port> epoch=<epoch> pid=<pid>

(:class:`~repro.serve.supervisor.ShardSupervisor` waits for this line;
``--port 0`` asks the OS for a free port and the handshake reports the
one assigned.)  It then serves until killed — there is no graceful
shutdown on purpose: the whole point of running shards as processes is
that ``SIGKILL`` exercises the same recovery a power failure would.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.comm.transport import TcpListener
from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.queueing.sharded import EPOCH_RM
from repro.serve.service import ShardService
from repro.storage.disk import FileDisk
from repro.transaction.deterministic import DeterministicLane


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-shardd",
        description=(
            "Host one queue-repository shard (WAL, locks, transaction "
            "manager, two-phase-commit branch service) over the framed "
            "TCP wire protocol."
        ),
    )
    parser.add_argument(
        "--dir", required=True,
        help="data directory for this shard's disk (created if missing; "
             "a non-empty directory is recovered on boot)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default 0: OS-assigned, reported "
             "in the READY handshake line)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--name", default="reqnode",
        help="system (facade) name this shard belongs to (default reqnode)",
    )
    parser.add_argument(
        "--shard", type=int, default=0,
        help="this shard's index within the system (default 0)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="total shard count of the system; with 1 the shard keeps "
             "the bare system name, matching the in-process layout",
    )
    parser.add_argument(
        "--cc", choices=("2pl", "auto", "deterministic"), default="2pl",
        help="concurrency-control policy for auto-commit queue "
             "operations: 2pl (default), or auto/deterministic to run "
             "queue-shaped transactions on the deterministic lane",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=256,
        help="server-side admission bound: calls executing concurrently "
             "before the listener stops reading new frames (default 256)",
    )
    return parser


def serve(args: argparse.Namespace) -> TcpListener:
    """Recover the shard, start serving, print the READY handshake.
    Split from :func:`main` so tests can drive a shard in process."""
    os.makedirs(args.dir, exist_ok=True)
    shard_name = (
        args.name if args.shards == 1 else f"{args.name}.s{args.shard}"
    )
    repo = QueueRepository(shard_name, FileDisk(args.dir))
    # Durable coordinator epoch, exactly as the in-process sharded
    # facade mints one per boot: global ids of this incarnation embed
    # it, so they can never collide with pre-crash decision records.
    epoch = repo.epochs.epoch + 1
    repo.log.log_auto(
        EPOCH_RM, {"epoch": epoch},
        on_lsn=lambda _lsn: repo.epochs.note(epoch),
    )
    lane = DeterministicLane(repo) if args.cc != "2pl" else None
    qm = QueueManager(repo, cc=args.cc, lane=lane)
    service = ShardService(repo, epoch=epoch, qm=qm)
    listener = TcpListener(
        service.handle, host=args.host, port=args.port,
        max_inflight=args.max_inflight,
    )
    print(
        f"READY name={shard_name} port={listener.port} "
        f"epoch={epoch} pid={os.getpid()}",
        flush=True,
    )
    return listener


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    serve(args)
    # Serve until killed (SIGKILL is the supported shutdown: restart
    # recovery is the cleanup).
    import threading

    threading.Event().wait()
    return 0  # pragma: no cover - unreachable


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
