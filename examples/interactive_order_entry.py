#!/usr/bin/env python3
"""Interactive order entry (Section 8) in both of the paper's styles.

1. Pseudo-conversational (Section 8.2): each intermediate output is a
   reply, each intermediate input a new request; state rides the
   IMS-style scratch pad.
2. Single transaction with logged replay (Section 8.3): the whole
   conversation is ONE transaction; the first attempt aborts halfway,
   and the retry replays the customer's answers from the client-side
   I/O log without asking again.

Run:  python examples/interactive_order_entry.py
"""

import threading

from repro.apps.orders import OrderApp
from repro.core.interactive import (
    IntermediateIOLog,
    LoggedConversation,
    PseudoConversationalClient,
    conversational_handler,
    interactive_handler,
)
from repro.core.request import Request
from repro.core.system import TPSystem


def pseudo_conversational() -> None:
    print("=== pseudo-conversational (Section 8.2) ===")
    system = TPSystem()
    orders = OrderApp(system)
    orders.stock_items({"widget": (5, 10), "gizmo": (9, 3)})

    server = system.server("conv", conversational_handler(orders.conversational_step))
    server.start()

    inputs = ["carol", {"item": "widget", "qty": 2}, {"confirm": True}]
    conversation = PseudoConversationalClient(
        "carol-terminal", system.clerk("carol-terminal"), inputs, trace=system.trace
    )
    final = conversation.run()
    server.stop()

    for phase, output in enumerate(conversation.outputs):
        print(f"  phase {phase} output: {output}")
    print(f"  order placed: {final.body['output']}")
    print(f"  widget stock now: {orders.stock_of('widget')}")


def single_transaction_with_replay() -> None:
    print("=== single transaction + logged replay (Section 8.3) ===")
    system = TPSystem()
    orders = OrderApp(system)
    orders.stock_items({"gizmo": (9, 5)})

    rid = "dave-terminal#1"
    io_log = IntermediateIOLog(rid)
    answers = {"ask-count": 0}

    def customer(output):
        answers["ask-count"] += 1
        print(f"  [customer asked] {list(output)[0]}...")
        if "catalog" in output:
            return {"item": "gizmo", "qty": 2}
        return {"confirm": True}

    conversation = LoggedConversation(io_log, customer)
    attempts = {"n": 0}

    def body(txn, request, conv):
        attempts["n"] += 1
        result = orders.interactive_body(txn, request, conv)
        if attempts["n"] == 1:
            raise RuntimeError("deadlock! transaction aborts after the dialogue")
        return result

    server = system.server("one-txn", interactive_handler({rid: conversation}, body))
    clerk = system.clerk("dave-terminal")
    clerk.connect()
    clerk.send(
        Request(
            rid=rid,
            body={"customer": "dave"},
            client_id="dave-terminal",
            reply_to=system.reply_queue_name("dave-terminal"),
        ),
        rid,
    )

    try:
        server.process_one()
    except RuntimeError as exc:
        print(f"  first attempt aborted: {exc}")
    print(f"  stock after abort (untouched): {orders.stock_of('gizmo')}")

    server.process_one()  # retry: inputs replayed from the I/O log
    reply = clerk.receive(timeout=5)
    print(f"  retry reply: {reply.body}")
    print(
        f"  customer was asked {answers['ask-count']} times "
        f"(replays: {io_log.replays}, truncations: {io_log.truncations})"
    )
    print(f"  stock after commit: {orders.stock_of('gizmo')}")


if __name__ == "__main__":
    pseudo_conversational()
    print()
    single_transaction_with_replay()
