#!/usr/bin/env python3
"""The paper's Section 6 example: a funds transfer as a
multi-transaction request — debit, credit, clearinghouse log — each a
separate transaction chained through recoverable queues (Figure 6),
with a crash injected in the middle and a saga-based cancellation
(Section 7) at the end.

Run:  python examples/funds_transfer.py
"""

from repro.apps.banking import BankApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem


def show(bank: BankApp, label: str) -> None:
    print(
        f"{label:<38} alice={bank.balance('alice'):>4}  "
        f"bob={bank.balance('bob'):>4}  total={bank.total_money()}"
    )


def main() -> None:
    system = TPSystem()
    bank = BankApp(system)
    bank.open_accounts({"alice": 1000, "bob": 200})
    show(bank, "opening balances")

    # ------------------------------------------------------------------
    # 1. A transfer that survives a crash between its transactions.
    # ------------------------------------------------------------------
    pipeline = bank.transfer_pipeline()
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client(
        "teller-1", bank.transfer_work([("alice", "bob", 300)]), display
    )
    client.resynchronize()
    client.send_only(1)

    # Stage 0 (debit) commits...
    pipeline.stage_server(0).process_one()
    show(bank, "after debit transaction")

    # ...then the whole node crashes.
    system.crash()
    system2 = system.reopen()
    bank2 = BankApp(system2)
    show(bank2, "after crash + restart recovery")

    # Recovery: the continuation request is still queued; the remaining
    # stages run exactly once.
    pipeline2 = bank2.transfer_pipeline()
    executed = pipeline2.drain()
    print(f"stages executed after recovery: {executed} (credit + log)")
    show(bank2, "after pipeline completes")

    clerk = system2.clerk("teller-1")
    clerk.connect()
    reply = clerk.receive(timeout=5)
    print(f"client reply: {reply.body}")
    system2.trace.record("reply.processed", reply.rid)

    # ------------------------------------------------------------------
    # 2. Cancellation via compensation (Section 7).
    # ------------------------------------------------------------------
    pipeline3 = bank2.transfer_pipeline("xfer-cancel")
    saga = bank2.transfer_saga(pipeline3)
    display2 = DisplayWithUserIds(trace=system2.trace)
    client2 = system2.client(
        "teller-2", bank2.transfer_work([("bob", "alice", 150)]), display2
    )
    client2.resynchronize()
    client2.send_only(1)
    pipeline3.stage_server(0).process_one()  # debit bob
    show(bank2, "second transfer: after debit")

    outcome = saga.cancel("teller-2#1")
    print(
        f"cancelled: killed-in-queue={outcome.killed_in_queue}, "
        f"compensated stages={outcome.compensated_stages}"
    )
    show(bank2, "after compensation")

    assert bank2.total_money() == 1200, "money must be conserved"
    system2.checker().assert_ok(require_completion=False)
    print("money conserved; guarantees OK")


if __name__ == "__main__":
    main()
