#!/usr/bin/env python3
"""Quickstart: the paper's request/reply protocol in ~40 lines.

A client submits three requests through a recoverable queue; a server
processes each one in a transaction; a ticket printer consumes the
replies exactly once; the Section 3 guarantees are checked at the end.

Run:  python examples/quickstart.py
"""

from repro import TicketPrinter, TPSystem


def main() -> None:
    # A TP system: one queue repository holding the request queue, its
    # error queue, and per-client reply queues (Figure 4).
    system = TPSystem()

    # The server processes each request inside one transaction:
    # Dequeue -> handler -> Enqueue reply -> commit (Figure 5).
    def handler(txn, request):
        return {"shouted": str(request.body).upper()}

    server = system.server("upcase-server", handler)
    server.start()

    # The client is a fault-tolerant sequential program (Figure 2);
    # the ticket printer is its testable output device (Section 3).
    printer = TicketPrinter(trace=system.trace)
    client = system.client("demo-client", ["hello", "recoverable", "queues"], printer)

    replies = client.run()
    server.stop()

    for ticket, rid in printer.printed:
        print(f"ticket #{ticket}  {rid}")
    for reply in replies:
        print(f"  {reply.rid}: {reply.body}")

    # The three guarantees of Section 3, checked over the trace:
    # Request-Reply Matching, Exactly-Once Request-Processing,
    # At-Least-Once Reply-Processing.
    system.checker().assert_ok()
    print("guarantees: OK")


if __name__ == "__main__":
    main()
