#!/usr/bin/env python3
"""Section 1's partition-masking pattern: a branch office keeps taking
orders while its link to headquarters is down.

"If a client enqueues its requests to a local queue, and periodically
moves its local requests to the remote input queue of a server process,
then the server appears to provide a reliable service to the client
even if the client and server nodes are frequently partitioned by
communication failures."

The script: the branch captures 5 orders locally during a partition,
the relay drains them after the link heals (with a crash injected in
the relay's most dangerous window to show the exactly-once
deduplication), and headquarters processes each exactly once.

Run:  python examples/branch_office.py
"""

from repro.queueing.manager import QueueManager
from repro.queueing.relay import StableRelay
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


def main() -> None:
    branch = QueueRepository("branch", MemDisk())
    hq = QueueRepository("hq", MemDisk())
    branch.create_queue("outbox")
    hq.create_queue("inbox")

    link = {"up": False}
    relay = StableRelay(branch, "outbox", hq, "inbox", link_up=lambda: link["up"])

    # -- the link is down; the branch keeps working ----------------------
    outbox = branch.get_queue("outbox")
    for n in range(5):
        with branch.tm.transaction() as txn:
            outbox.enqueue(txn, {"order": n}, headers={"rid": f"branch#{n}"})
        relay.pump()  # refused: partitioned
    print(f"during partition: {relay.backlog()} orders captured locally, 0 forwarded")

    # -- the link heals; the relay crashes mid-transfer ------------------
    link["up"] = True
    relay.pump(limit=2)
    # Simulate the nasty window: the 3rd order reaches HQ but the relay
    # dies before clearing it locally; a fresh relay retries it.
    first = next(iter(outbox.eids()))
    element = outbox.read(first)
    key = relay._relay_key(element.eid)
    with hq.tm.transaction() as txn:
        hq.get_queue("inbox").enqueue(
            txn, element.body, headers={**element.headers, "relay_key": key}
        )
        relay.seen.put(txn, key, True)
    print("relay crashed after remote enqueue, before local dequeue...")

    relay2 = StableRelay(branch, "outbox", hq, "inbox", link_up=lambda: link["up"])
    moved = relay2.pump()
    print(
        f"recovered relay moved {moved} elements, "
        f"suppressed {relay2.duplicates_suppressed} duplicate(s)"
    )

    # -- headquarters processes everything exactly once ------------------
    qm = QueueManager(hq)
    handle, _, _ = qm.register("inbox", "hq-server", stable=False)
    seen_rids = []
    while qm.depth("inbox") > 0:
        with hq.tm.transaction() as txn:
            element = qm.dequeue(handle, txn=txn)
            seen_rids.append(element.headers["rid"])

    print(f"headquarters processed: {sorted(seen_rids)}")
    assert sorted(seen_rids) == [f"branch#{n}" for n in range(5)]
    assert len(seen_rids) == len(set(seen_rids)), "duplicates!"
    print("every order processed exactly once across partition + relay crash")


if __name__ == "__main__":
    main()
