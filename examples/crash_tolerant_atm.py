#!/usr/bin/env python3
"""A crash-tolerant ATM: exactly-once cash dispensing at EVERY possible
crash point.

This is the paper's motivating scenario for exactly-once reply
processing (Section 3): "Exactly-once is important if reply processing
is not idempotent, e.g., if it involves printing a ticket or dispensing
cash."  The script enumerates every crash point of a withdraw cycle
(client send, queue-manager commit, server processing, device
dispensing) and, for each, crashes there, recovers, resynchronizes, and
verifies the customer got their money exactly once and the bank's books
balance.

Run:  python examples/crash_tolerant_atm.py
"""

import threading

from repro.apps.banking import BankApp
from repro.core.client import UserCheckpoint
from repro.core.devices import CashDispenser
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

WITHDRAWALS = [("alice", 60), ("alice", 25)]


def withdraw_handler(bank: BankApp):
    def handler(txn, request):
        account, amount = request.body["account"], request.body["amount"]
        bank._adjust(txn, account, -amount)
        bank._log(txn, request.rid, {"kind": "withdraw", **request.body})
        return {"amount": amount}

    return handler


def scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    bank = BankApp(system)
    bank.open_accounts({"alice": 500})
    atm = CashDispenser(trace=trace, injector=injector)
    user_log = UserCheckpoint()
    scenario.state = {"system": system, "atm": atm, "log": user_log}
    work = [{"account": a, "amount": m} for a, m in WITHDRAWALS]
    client = system.client("atm-07", work, atm, receive_timeout=None, user_log=user_log)
    server = system.server("bank", withdraw_handler(bank))
    seq = client.resynchronize()
    while seq <= len(work):
        client.send_only(seq)
        server.process_one()
        reply = client.clerk.receive(ckpt=atm.state(), timeout=1)
        atm.process(reply.rid, reply.body)
        seq += 1
    user_log.mark_done()
    client.clerk.disconnect()
    return scenario.state


def recover(state):
    system2 = state["system"].reopen()
    bank2 = BankApp(system2)
    work = [{"account": a, "amount": m} for a, m in WITHDRAWALS]
    client = system2.client(
        "atm-07", work, state["atm"], receive_timeout=5, user_log=state["log"]
    )
    server = system2.server("bank-recovery", withdraw_handler(bank2))
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        client.run()
    finally:
        done.set()
        thread.join(timeout=10)
    return system2, bank2


def check(state, recovered, plan):
    system2, bank2 = recovered
    atm = state["atm"]
    total = sum(m for _a, m in WITHDRAWALS)
    assert atm.state() == total, (
        f"crash at {plan.point}: ATM dispensed {atm.state()}, expected {total}"
    )
    assert bank2.balance("alice") == 500 - total
    GuaranteeChecker(system2.trace).assert_ok()
    return True


def main() -> None:
    results = crash_every_step(scenario, recover, check)
    crashed = sum(1 for r in results if r.crashed)
    print(f"crash points exercised : {crashed}")
    print(f"runs (incl. crash-free): {len(results)}")
    print(f"cash dispensed per run : {sum(m for _a, m in WITHDRAWALS)} (exactly once, every time)")
    print("books balanced and all Section 3 guarantees held on every run")


if __name__ == "__main__":
    main()
