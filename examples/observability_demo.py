#!/usr/bin/env python3
"""Observability: reconstruct one request's lifetime from spans.

Runs the paper's request/reply protocol with metrics and span tracing
enabled, forces the first processing attempt to abort (the queue's
abort-count machinery of Section 4.2 returns the request to the queue),
and then prints:

* the span timeline for the request id — send -> enqueue -> dequeue ->
  aborted attempt -> re-dequeue -> commit -> reply -> receive;
* the metrics dashboard — commit/abort counters, queue depth gauges,
  and latency percentiles that agree with that story.

Run:  python examples/observability_demo.py
"""

from repro import Observability, Request, TPSystem


def main() -> None:
    obs = Observability()  # enabled metrics registry + span tracer
    system = TPSystem(obs=obs)

    # A handler that dies on its first attempt: the processing
    # transaction aborts, the request goes back to the queue, and the
    # retry succeeds — exactly-once processing despite the failure.
    attempts = {"n": 0}

    def flaky_handler(txn, request):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("transient failure on first attempt")
        return {"balance": 100, "op": request.body["op"]}

    server = system.server("bank-server", flaky_handler)
    clerk = system.clerk("atm-1")
    clerk.connect()

    rid = "atm-1#1"
    request = Request(
        rid=rid,
        body={"op": "deposit", "amount": 50},
        client_id="atm-1",
        reply_to=system.reply_queue_name("atm-1"),
    )
    clerk.send(request, rid)

    try:
        server.process_one()  # attempt 1: aborts, request requeued
    except RuntimeError:
        pass
    server.process_one()  # attempt 2: commits
    reply = clerk.receive(timeout=5.0)
    print(f"reply for {reply.rid}: {reply.body}  (handler attempts: {attempts['n']})")
    print()

    print(system.span_timeline(rid))
    print()
    print(system.metrics_dashboard())

    # The metrics must agree with the trace: one commit, one abort.
    snap = system.metrics_snapshot()
    committed = snap["requests_committed_total"]["series"][0]["value"]
    aborted = snap["server_aborts_total"]["series"][0]["value"]
    assert committed == 1 and aborted == 1, (committed, aborted)
    print()
    print("metrics consistent with trace: OK")


if __name__ == "__main__":
    main()
